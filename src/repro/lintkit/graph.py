"""Project-wide import and call graph over per-module AST summaries.

The RP1xx rules see one file at a time; the RP2xx *project* rules need to
know what a function reaches two or three calls away — a ``time.sleep``
buried in a helper is just as fatal to the event loop as one written in the
handler itself.  This module provides the substrate:

* :func:`summarize_module` distils one parsed module into a serializable
  :class:`ModuleSummary` — imports, classes (with best-effort ``self.attr``
  types), and every function/method with its call sites.  Summaries are
  plain data (``to_dict`` / ``from_dict``), so the incremental cache can
  persist them and a warm run rebuilds the graph without re-parsing.
* :class:`ProjectGraph` stitches summaries together and resolves call
  sites to project functions: module-level functions, methods (through
  ``self``, single inheritance and constructor-assigned attribute types),
  classes (to their ``__init__``), ``functools.partial`` wrappers and
  executor-submitted callables.

Resolution is deliberately *best effort*: anything the resolver cannot
identify (dynamic dispatch, callables stored in data structures, foreign
libraries) simply produces no edge, so analysis degrades to silence, never
to a false finding or a crash.

Call sites carry execution-context flags the rules interpret differently:

``awaited``
    The call is directly under ``await`` — an awaited ``async def`` runs
    its body on the caller's event loop (blocking propagates through it).
``stmt_expr``
    The call is a bare expression statement whose value nobody keeps —
    the shape of an unawaited coroutine or a fire-and-forget task.
``offloaded``
    The callable was *passed to* an executor (``pool.submit(fn, ...)``,
    ``loop.run_in_executor(ex, fn, ...)``): it runs off the event loop, so
    blocking does not propagate (RP201), but its results still feed the
    response, so determinism taint does (RP203).
``deferred``
    The callable was wrapped, not called (``functools.partial``,
    ``asyncio.create_task``, ``Thread(target=...)``, ``call_later``):
    where it eventually runs is unknown, so blocking analysis skips it and
    taint analysis follows it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lintkit.unitcheck import ModuleUnitFacts
from repro.utils.validation import check_non_negative_int

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleSummary",
    "ProjectGraph",
    "FuncKey",
    "module_name_for_path",
    "summarize_module",
    "dotted_name",
]

#: (module, qualname) — the graph-wide identity of one function.
FuncKey = Tuple[str, str]

#: Terminal attribute names that submit their callable argument to an
#: executor (the callable runs off the event loop).
_OFFLOAD_ATTRS = frozenset({"run_in_executor", "submit"})

#: Terminal names that wrap a callable for later, elsewhere execution.
_DEFER_NAMES = frozenset(
    {
        "partial",
        "create_task",
        "ensure_future",
        "call_soon",
        "call_later",
        "call_soon_threadsafe",
        "call_at",
        "Thread",
        "Timer",
    }
)


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted form of a name/attribute chain (else ``""``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def module_name_for_path(path: str, root: Optional[str] = None) -> str:
    """Dotted module name for a file path.

    Preference order: relative to ``root`` when given; the components after
    the last ``src`` directory (the repo layout); the components from the
    first ``repro`` onward; otherwise every component.  ``__init__.py``
    maps to its package.
    """
    p = Path(path)
    parts: Tuple[str, ...] = p.parts
    if root is not None:
        try:
            parts = p.resolve().relative_to(Path(root).resolve()).parts
        except ValueError:
            parts = p.parts
    elif "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    if not parts:
        return p.stem
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    pieces = [part for part in parts[:-1] if part not in (".", "..")]
    if leaf != "__init__":
        pieces.append(leaf)
    return ".".join(pieces) if pieces else leaf


# --------------------------------------------------------------------- #
# Summary data model                                                    #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CallSite:
    """One call (or submitted/deferred callable reference) in a function.

    ``arg_units``/``kwarg_units`` carry the units the RP3xx checker
    inferred for the call's arguments (``""`` = unknown); they are empty
    unless at least one argument had a known unit.
    """

    callee: str
    line: int
    col: int
    awaited: bool = False
    stmt_expr: bool = False
    offloaded: bool = False
    deferred: bool = False
    keywords: Tuple[str, ...] = ()
    first_arg_none: bool = False
    arg_units: Tuple[str, ...] = ()
    kwarg_units: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        check_non_negative_int(self.line, "line")
        check_non_negative_int(self.col, "col")

    def to_dict(self) -> Dict[str, object]:
        return {
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "awaited": self.awaited,
            "stmt_expr": self.stmt_expr,
            "offloaded": self.offloaded,
            "deferred": self.deferred,
            "keywords": list(self.keywords),
            "first_arg_none": self.first_arg_none,
            "arg_units": list(self.arg_units),
            "kwarg_units": [list(pair) for pair in self.kwarg_units],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CallSite":
        return CallSite(
            callee=str(data["callee"]),
            line=int(data["line"]),
            col=int(data["col"]),
            awaited=bool(data["awaited"]),
            stmt_expr=bool(data["stmt_expr"]),
            offloaded=bool(data["offloaded"]),
            deferred=bool(data["deferred"]),
            keywords=tuple(str(k) for k in data["keywords"]),
            first_arg_none=bool(data["first_arg_none"]),
            arg_units=tuple(str(u) for u in data.get("arg_units", [])),
            kwarg_units=tuple(
                (str(pair[0]), str(pair[1]))
                for pair in data.get("kwarg_units", [])
            ),
        )


@dataclass(frozen=True)
class FunctionInfo:
    """One function, method or nested function and its call sites.

    ``params``/``param_units``/``return_unit`` are the RP3xx unit facts
    declared by the function's ``Annotated`` signature (``""`` = none);
    ``attr_reads``/``attr_writes`` record every ``self.<attr>`` access
    with its line, for the RP206 await-interleaving race check.
    """

    qualname: str
    name: str
    line: int
    col: int
    is_async: bool
    cls: Optional[str]
    calls: Tuple[CallSite, ...]
    params: Tuple[str, ...] = ()
    param_units: Tuple[str, ...] = ()
    return_unit: str = ""
    attr_reads: Tuple[Tuple[str, int], ...] = ()
    attr_writes: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        check_non_negative_int(self.line, "line")
        check_non_negative_int(self.col, "col")

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "is_async": self.is_async,
            "cls": self.cls,
            "calls": [site.to_dict() for site in self.calls],
            "params": list(self.params),
            "param_units": list(self.param_units),
            "return_unit": self.return_unit,
            "attr_reads": [list(pair) for pair in self.attr_reads],
            "attr_writes": [list(pair) for pair in self.attr_writes],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FunctionInfo":
        cls = data.get("cls")
        return FunctionInfo(
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            line=int(data["line"]),
            col=int(data["col"]),
            is_async=bool(data["is_async"]),
            cls=str(cls) if cls is not None else None,
            calls=tuple(
                CallSite.from_dict(site) for site in data["calls"]
            ),
            params=tuple(str(p) for p in data.get("params", [])),
            param_units=tuple(str(u) for u in data.get("param_units", [])),
            return_unit=str(data.get("return_unit", "")),
            attr_reads=tuple(
                (str(pair[0]), int(pair[1]))
                for pair in data.get("attr_reads", [])
            ),
            attr_writes=tuple(
                (str(pair[0]), int(pair[1]))
                for pair in data.get("attr_writes", [])
            ),
        )


@dataclass(frozen=True)
class ClassInfo:
    """One class: bases (as written) and constructor-assigned attr types."""

    name: str
    bases: Tuple[str, ...]
    attr_types: Tuple[Tuple[str, str], ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "bases": list(self.bases),
            "attr_types": [list(pair) for pair in self.attr_types],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ClassInfo":
        return ClassInfo(
            name=str(data["name"]),
            bases=tuple(str(b) for b in data["bases"]),
            attr_types=tuple(
                (str(pair[0]), str(pair[1]))
                for pair in data["attr_types"]
            ),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project graph needs to know about one module."""

    path: str
    module: str
    is_test: bool
    imports: Tuple[Tuple[str, str], ...] = ()
    functions: Tuple[FunctionInfo, ...] = ()
    classes: Tuple[ClassInfo, ...] = ()
    suppressions: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form, for the incremental analysis cache."""
        return {
            "path": self.path,
            "module": self.module,
            "is_test": self.is_test,
            "imports": [list(pair) for pair in self.imports],
            "functions": [fn.to_dict() for fn in self.functions],
            "classes": [cls.to_dict() for cls in self.classes],
            "suppressions": [
                [line, list(ids)] for line, ids in self.suppressions
            ],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ModuleSummary":
        return ModuleSummary(
            path=str(data["path"]),
            module=str(data["module"]),
            is_test=bool(data["is_test"]),
            imports=tuple(
                (str(pair[0]), str(pair[1])) for pair in data["imports"]
            ),
            functions=tuple(
                FunctionInfo.from_dict(fn) for fn in data["functions"]
            ),
            classes=tuple(
                ClassInfo.from_dict(cls) for cls in data["classes"]
            ),
            suppressions=tuple(
                (int(entry[0]), tuple(str(i) for i in entry[1]))
                for entry in data["suppressions"]
            ),
        )


# --------------------------------------------------------------------- #
# Summarization (one parsed module -> ModuleSummary)                    #
# --------------------------------------------------------------------- #


def _import_bindings(tree: ast.Module, module: str) -> List[Tuple[str, str]]:
    """``local name -> dotted target`` for every top-of-scope import."""
    bindings: List[Tuple[str, str]] = []
    package = module.rsplit(".", 1)[0] if "." in module else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bindings.append((alias.asname, alias.name))
                else:
                    # ``import a.b`` binds ``a``; attribute chains resolve
                    # through progressively longer module prefixes.
                    bindings.append((alias.name.split(".")[0], alias.name.split(".")[0]))
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from the containing package.
                anchor = module.split(".")
                # ``from . import x`` inside pkg.mod anchors at pkg.
                anchor = anchor[: len(anchor) - node.level] if len(anchor) >= node.level else []
                prefix = ".".join(anchor)
                base = f"{prefix}.{base}" if base and prefix else (base or prefix)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                bindings.append((alias.asname or alias.name, target))
    return bindings


class _CallCollector(ast.NodeVisitor):
    """Collect call sites inside one function body (nested defs excluded)."""

    def __init__(self) -> None:
        self.calls: List[CallSite] = []
        self._await_values: Set[int] = set()
        self._stmt_values: Set[int] = set()

    def collect(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> Tuple[CallSite, ...]:
        for stmt in fn.body:
            self._visit_stmt(stmt)
        return tuple(self.calls)

    # -- statement walk that stops at nested function/class definitions -- #

    def _visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are summarized separately
        if isinstance(node, ast.Expr):
            value = node.value
            if isinstance(value, ast.Await):
                if isinstance(value.value, ast.Call):
                    self._await_values.add(id(value.value))
            elif isinstance(value, ast.Call):
                self._stmt_values.add(id(value))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._visit_stmt(child)
            else:
                self._visit_expr(child)

    def _visit_expr(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            self._await_values.add(id(node.value))
        if isinstance(node, ast.Call):
            self._record(node)
        for child in ast.iter_child_nodes(node):
            self._visit_expr(child)

    # -- one call -> CallSite(s) -- #

    def _record(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        if not callee:
            return
        terminal = callee.split(".")[-1]
        first_arg_none = not node.args or (
            isinstance(node.args[0], ast.Constant) and node.args[0].value is None
        )
        self.calls.append(
            CallSite(
                callee=callee,
                line=int(node.lineno),
                col=int(node.col_offset) + 1,
                awaited=id(node) in self._await_values,
                stmt_expr=id(node) in self._stmt_values,
                keywords=tuple(
                    kw.arg for kw in node.keywords if kw.arg is not None
                ),
                first_arg_none=first_arg_none,
            )
        )
        # Callable references handed to executors / wrappers become their
        # own (offloaded/deferred) call sites.
        if terminal in _OFFLOAD_ATTRS or terminal in _DEFER_NAMES:
            offload = terminal in _OFFLOAD_ATTRS
            candidates: List[ast.expr] = list(node.args)
            candidates.extend(
                kw.value
                for kw in node.keywords
                if kw.arg in ("target", "func", "callback")
            )
            for arg in candidates:
                ref = dotted_name(arg)
                if not ref:
                    continue
                self.calls.append(
                    CallSite(
                        callee=ref,
                        line=int(arg.lineno),
                        col=int(arg.col_offset) + 1,
                        offloaded=offload,
                        deferred=not offload,
                    )
                )


def _self_attr_types(cls: ast.ClassDef) -> Tuple[Tuple[str, str], ...]:
    """``self.<attr> = ClassName(...)`` assignments across all methods."""
    types: Dict[str, str] = {}
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if not isinstance(value, ast.Call):
                continue
            ctor = dotted_name(value.func)
            if not ctor:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in types
                ):
                    types[target.attr] = ctor
    return tuple(sorted(types.items()))


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _self_attr_accesses(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...]]:
    """Every ``self.<attr>`` (read, write) in a body, with line numbers.

    Nested defs are excluded (they are summarized separately); an augmented
    assignment counts as both a read and a write — that is exactly the
    read-modify-write shape RP206 looks for.
    """
    reads: List[Tuple[str, int]] = []
    writes: List[Tuple[str, int]] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.AugAssign) and _is_self_attr(node.target):
            target = node.target
            assert isinstance(target, ast.Attribute)
            reads.append((target.attr, int(target.lineno)))
            writes.append((target.attr, int(target.lineno)))
            visit(node.value)
            return
        if _is_self_attr(node):
            assert isinstance(node, ast.Attribute)
            if isinstance(node.ctx, ast.Load):
                reads.append((node.attr, int(node.lineno)))
            else:
                writes.append((node.attr, int(node.lineno)))
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in fn.body:
        visit(stmt)
    return tuple(reads), tuple(writes)


def _attach_unit_facts(
    site: CallSite, call_units: Mapping[Tuple[int, int, str], Any]
) -> CallSite:
    fact = call_units.get((site.line, site.col, site.callee))
    if fact is None:
        return site
    return replace(
        site, arg_units=tuple(fact.arg_units), kwarg_units=tuple(fact.kwarg_units)
    )


def _summarize_functions(
    body: Sequence[ast.stmt],
    prefix: str,
    cls: Optional[str],
    call_units: Mapping[Tuple[int, int, str], Any],
    fn_units: Mapping[str, Any],
) -> Iterator[FunctionInfo]:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}" if prefix else node.name
            calls = _CallCollector().collect(node)
            if call_units:
                calls = tuple(
                    _attach_unit_facts(site, call_units) for site in calls
                )
            units = fn_units.get(qualname)
            reads, writes = _self_attr_accesses(node)
            yield FunctionInfo(
                qualname=qualname,
                name=node.name,
                line=int(node.lineno),
                col=int(node.col_offset) + 1,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                cls=cls,
                calls=calls,
                params=tuple(units.params) if units is not None else (),
                param_units=tuple(units.param_units) if units is not None else (),
                return_unit=units.return_unit if units is not None else "",
                attr_reads=reads,
                attr_writes=writes,
            )
            # Nested defs: resolvable as ``<outer>.<locals>.<inner>``.
            yield from _summarize_functions(
                node.body, f"{qualname}.<locals>.", cls, call_units, fn_units
            )
        elif isinstance(node, ast.ClassDef):
            class_prefix = f"{prefix}{node.name}." if prefix else f"{node.name}."
            yield from _summarize_functions(
                node.body, class_prefix, node.name, call_units, fn_units
            )


def summarize_module(
    tree: ast.Module,
    path: str,
    is_test: bool,
    suppressions: Optional[Mapping[int, FrozenSet[str]]] = None,
    root: Optional[str] = None,
    unit_facts: Optional[ModuleUnitFacts] = None,
) -> ModuleSummary:
    """Distil one parsed module into a :class:`ModuleSummary`.

    ``unit_facts`` (from :func:`repro.lintkit.unitcheck.infer_module`)
    folds the RP3xx unit signatures and call-argument units into the
    summary, keyed back to call sites by ``(line, col, callee)``.
    """
    module = module_name_for_path(path, root=root)
    call_units: Dict[Tuple[int, int, str], Any] = {}
    fn_units: Dict[str, Any] = {}
    if unit_facts is not None:
        call_units = {
            (fact.line, fact.col, fact.callee): fact for fact in unit_facts.calls
        }
        fn_units = {sig.qualname: sig for sig in unit_facts.functions}
    classes = tuple(
        ClassInfo(
            name=node.name,
            bases=tuple(
                filter(None, (dotted_name(base) for base in node.bases))
            ),
            attr_types=_self_attr_types(node),
        )
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    )
    suppression_items: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()
    if suppressions:
        suppression_items = tuple(
            (line, tuple(sorted(ids))) for line, ids in sorted(suppressions.items())
        )
    return ModuleSummary(
        path=path,
        module=module,
        is_test=is_test,
        imports=tuple(_import_bindings(tree, module)),
        functions=tuple(
            _summarize_functions(tree.body, "", None, call_units, fn_units)
        ),
        classes=classes,
        suppressions=suppression_items,
    )


# --------------------------------------------------------------------- #
# The project graph                                                     #
# --------------------------------------------------------------------- #


@dataclass
class _Edge:
    """One resolved call edge, kept with the site that produced it."""

    target: FuncKey
    site: CallSite


@dataclass
class _Module:
    summary: ModuleSummary
    imports: Dict[str, str] = field(default_factory=dict)


class ProjectGraph:
    """Symbol tables + call-edge resolution over a set of module summaries."""

    #: Bound on re-export chases and base-class walks (cycle safety).
    _MAX_HOPS = 8

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self._modules: Dict[str, _Module] = {}
        self._functions: Dict[FuncKey, FunctionInfo] = {}
        self._classes: Dict[Tuple[str, str], ClassInfo] = {}
        for summary in summaries:
            entry = _Module(summary=summary, imports=dict(summary.imports))
            self._modules[summary.module] = entry
            for fn in summary.functions:
                self._functions[(summary.module, fn.qualname)] = fn
            for cls in summary.classes:
                self._classes[(summary.module, cls.name)] = cls

    # -- inventory ----------------------------------------------------- #

    @property
    def modules(self) -> Dict[str, ModuleSummary]:
        return {name: entry.summary for name, entry in self._modules.items()}

    def functions(self) -> Iterator[Tuple[str, FunctionInfo]]:
        """Every known function as ``(module, info)``."""
        for (module, _), info in sorted(self._functions.items()):
            yield module, info

    def function(self, key: FuncKey) -> Optional[FunctionInfo]:
        """The function behind a ``(module, qualname)`` key, if known."""
        return self._functions.get(key)

    def summary(self, module: str) -> Optional[ModuleSummary]:
        """The summary of a module by dotted name, if analyzed."""
        entry = self._modules.get(module)
        return entry.summary if entry is not None else None

    def is_suppressed(self, module: str, line: int, rule_id: str) -> bool:
        """True when a ``# lint: ignore[...]`` covers (module, line)."""
        entry = self._modules.get(module)
        if entry is None:
            return False
        for sup_line, ids in entry.summary.suppressions:
            if sup_line == line and rule_id in ids:
                return True
        return False

    # -- resolution ---------------------------------------------------- #

    def _import_target(self, module: str, name: str) -> Optional[str]:
        entry = self._modules.get(module)
        if entry is None:
            return None
        return entry.imports.get(name)

    def _resolve_symbol(
        self, module: str, name: str, hops: int = 0
    ) -> Optional[Tuple[str, str]]:
        """``(defining module, symbol)`` for a name visible in ``module``.

        Chases re-exports (``from repro.x import f`` in an ``__init__``)
        up to ``_MAX_HOPS`` deep.
        """
        if hops > self._MAX_HOPS:
            return None
        if (module, name) in self._functions or (module, name) in self._classes:
            return module, name
        target = self._import_target(module, name)
        if target is None:
            return None
        if target in self._modules:
            return None  # a module object, not a callable symbol
        if "." in target:
            target_mod, symbol = target.rsplit(".", 1)
            if target_mod in self._modules:
                return self._resolve_symbol(target_mod, symbol, hops + 1)
        return None

    def _resolve_class(
        self, module: str, dotted: str, hops: int = 0
    ) -> Optional[Tuple[str, ClassInfo]]:
        if hops > self._MAX_HOPS:
            return None
        parts = dotted.split(".")
        if len(parts) == 1:
            located = self._resolve_symbol(module, parts[0])
            if located is not None and located in self._classes:
                return located[0], self._classes[located]
            return None
        head_target = self._import_target(module, parts[0])
        if head_target is not None and head_target in self._modules:
            return self._resolve_class(
                head_target, ".".join(parts[1:]), hops + 1
            )
        return None

    def _method(
        self, module: str, class_name: str, method: str, hops: int = 0
    ) -> Optional[FuncKey]:
        """Find ``method`` on a class, walking project-resolvable bases."""
        if hops > self._MAX_HOPS:
            return None
        key = (module, f"{class_name}.{method}")
        if key in self._functions:
            return key
        cls = self._classes.get((module, class_name))
        if cls is None:
            return None
        for base in cls.bases:
            located = self._resolve_class(module, base, hops + 1)
            if located is not None:
                found = self._method(located[0], located[1].name, method, hops + 1)
                if found is not None:
                    return found
        return None

    def _attr_type(
        self, module: str, class_name: str, attr: str, hops: int = 0
    ) -> Optional[Tuple[str, ClassInfo]]:
        """The class a ``self.<attr>`` was constructed as, if recorded."""
        if hops > self._MAX_HOPS:
            return None
        cls = self._classes.get((module, class_name))
        if cls is None:
            return None
        for name, ctor in cls.attr_types:
            if name == attr:
                return self._resolve_class(module, ctor)
        for base in cls.bases:
            located = self._resolve_class(module, base, hops + 1)
            if located is not None:
                found = self._attr_type(located[0], located[1].name, attr, hops + 1)
                if found is not None:
                    return found
        return None

    def _callable_key(self, module: str, symbol: str) -> Optional[FuncKey]:
        """A function key for a module-level symbol (class -> ``__init__``)."""
        if (module, symbol) in self._functions:
            return module, symbol
        if (module, symbol) in self._classes:
            init = self._method(module, symbol, "__init__")
            return init
        return None

    def resolve(
        self, module: str, caller: FunctionInfo, callee: str
    ) -> Optional[FuncKey]:
        """Resolve one call site to a project function key (best effort)."""
        parts = callee.split(".")
        # self.method() / self.attr.method()
        if parts[0] == "self" and caller.cls is not None:
            if len(parts) == 2:
                return self._method(module, caller.cls, parts[1])
            if len(parts) == 3:
                located = self._attr_type(module, caller.cls, parts[1])
                if located is not None:
                    return self._method(located[0], located[1].name, parts[2])
            return None
        # bare name: nested def, module-level function/class, or import
        if len(parts) == 1:
            nested = (module, f"{caller.qualname}.<locals>.{parts[0]}")
            if nested in self._functions:
                return nested
            located = self._resolve_symbol(module, parts[0])
            if located is not None:
                return self._callable_key(located[0], located[1])
            return None
        # dotted: walk the head binding, then the remainder
        head_target = self._import_target(module, parts[0])
        if head_target is not None:
            if head_target in self._modules:
                if len(parts) == 2:
                    located = self._resolve_symbol(head_target, parts[1])
                    if located is not None:
                        return self._callable_key(located[0], located[1])
                elif len(parts) == 3:
                    found = self._method(head_target, parts[1], parts[2])
                    if found is not None:
                        return found
            elif "." in head_target and len(parts) == 2:
                # ``from pkg import Class`` then ``Class.method()``
                target_mod, symbol = head_target.rsplit(".", 1)
                if target_mod in self._modules and (
                    target_mod, symbol
                ) in self._classes:
                    return self._method(target_mod, symbol, parts[1])
        # ClassName.method() with a locally defined class
        if (module, parts[0]) in self._classes and len(parts) == 2:
            return self._method(module, parts[0], parts[1])
        # Fully qualified module path written out (``pkg.mod.func()``)
        for split in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:split])
            if mod_name in self._modules:
                remainder = parts[split:]
                if len(remainder) == 1:
                    return self._callable_key(mod_name, remainder[0])
                if len(remainder) == 2:
                    return self._method(mod_name, remainder[0], remainder[1])
                return None
        return None

    def edges(
        self,
        key: FuncKey,
        include_offloaded: bool = False,
        include_deferred: bool = False,
    ) -> Iterator[_Edge]:
        """Resolved outgoing call edges of one function."""
        info = self._functions.get(key)
        if info is None:
            return
        for site in info.calls:
            if site.offloaded and not include_offloaded:
                continue
            if site.deferred and not include_deferred:
                continue
            target = self.resolve(key[0], info, site.callee)
            if target is not None:
                yield _Edge(target=target, site=site)

    def reachable(
        self,
        roots: Sequence[FuncKey],
        include_offloaded: bool = True,
        include_deferred: bool = True,
    ) -> Dict[FuncKey, Optional[FuncKey]]:
        """Forward closure from ``roots``: ``function -> parent`` witnesses."""
        parents: Dict[FuncKey, Optional[FuncKey]] = {}
        queue: List[FuncKey] = []
        for root in roots:
            if root in self._functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop()
            for edge in self.edges(
                current,
                include_offloaded=include_offloaded,
                include_deferred=include_deferred,
            ):
                if edge.target not in parents:
                    parents[edge.target] = current
                    queue.append(edge.target)
        return parents

    @staticmethod
    def chain(
        parents: Mapping[FuncKey, Optional[FuncKey]], key: FuncKey, limit: int = 8
    ) -> List[str]:
        """Root-to-key qualname path from a ``reachable`` parent map."""
        path: List[str] = []
        cursor: Optional[FuncKey] = key
        while cursor is not None and len(path) < limit:
            path.append(cursor[1])
            cursor = parents.get(cursor)
        return list(reversed(path))
