"""SARIF 2.1.0 serialization of lint findings.

SARIF (Static Analysis Results Interchange Format) is what code hosts and
IDEs ingest for inline annotations; emitting it lets the CI lint job
upload findings as a reviewable artifact without any custom tooling on
the other end.  Only the small, stable core of the spec is produced:
one ``run`` with a tool descriptor, one ``result`` per finding with a
physical location, and the rule index wired up so viewers can show the
rule summary next to each hit.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lintkit.engine import all_project_rules, all_rules
from repro.lintkit.findings import Finding

__all__ = ["sarif_document", "sarif_json"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptors() -> List[Dict[str, Any]]:
    descriptors = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
        }
        for rule in all_rules()
    ]
    descriptors.extend(
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
        }
        for rule in all_project_rules()
    )
    return sorted(descriptors, key=lambda d: str(d["id"]))


def sarif_document(findings: Sequence[Finding]) -> Dict[str, Any]:
    """The findings as a SARIF 2.1.0 log object (JSON-serializable dict)."""
    descriptors = _rule_descriptors()
    rule_index = {str(d["id"]): i for i, d in enumerate(descriptors)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lintkit",
                        "informationUri": "docs/static_analysis.md",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_json(findings: Sequence[Finding]) -> str:
    """The findings rendered as a SARIF JSON string."""
    return json.dumps(sarif_document(findings), indent=2, sort_keys=True)
