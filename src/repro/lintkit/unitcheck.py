"""Flow-sensitive physical-units inference (the RP3xx analysis core).

This module walks one parsed module and infers a :class:`~repro.lintkit.
unittypes.Unit` for every expression, seeded from three sources in
decreasing order of strength:

1. ``typing.Annotated`` unit aliases (``DB``, ``Watts``, ``JoulesLike``,
   ...) on parameters, returns and dataclass fields — strong;
2. the ten :mod:`repro.utils.units` converters, treated as built-in unit
   transfer functions (``db_to_linear`` consumes dB and produces a linear
   ratio, ...) — strong;
3. the repo's ``_w/_db/_dbm/_s/_m/_hz`` name-suffix convention — a weak
   prior that fills in where nothing stronger is known.

Inference propagates through assignments, arithmetic (via the
:mod:`~repro.lintkit.unittypes` lattice), NumPy broadcasting wrappers
(``np.asarray``, ``np.where``, reductions, ...) and control flow (branch
environments are joined; anything unclear degrades to ``UNKNOWN`` and can
never produce a finding).

The result of :func:`infer_module` is a :class:`ModuleUnitFacts` bundle:

* ``diags`` — the per-file RP301/RP303/RP304 diagnostics, surfaced by the
  rule classes in :mod:`repro.lintkit.unitrules`;
* ``functions`` — per-function declared parameter/return units, and
* ``calls`` — per-call-site inferred argument units.

The latter two are merged into the :class:`~repro.lintkit.graph.
ModuleSummary` by :func:`~repro.lintkit.graph.summarize_module`, so the
cross-module RP302 check (argument unit vs annotated parameter unit) runs
over cached summaries on the PR 7 project graph without re-parsing.

This module deliberately imports nothing from the engine or the graph —
only :mod:`ast` and the unit lattice — so both can import it freely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.utils.validation import check_non_negative_int
from repro.lintkit.unittypes import (
    UNKNOWN,
    OpResult,
    Unit,
    add_units,
    annotation_unit_name,
    div_units,
    join,
    mul_units,
    suffix_unit,
    unit_named,
)

__all__ = [
    "CONVERTERS",
    "UnitDiag",
    "CallArgUnits",
    "FunctionUnits",
    "ModuleUnitFacts",
    "annotation_unit",
    "infer_module",
]

#: The :mod:`repro.utils.units` converters as unit transfer functions:
#: terminal call name -> (expected input unit, produced output unit).
#: ``linear_to_dbm`` is the deprecated misnomer alias of ``watts_to_dbm``;
#: its *actual* contract is watts in, dBm out.
CONVERTERS: Dict[str, Tuple[str, str]] = {
    "db_to_linear": ("db", "ratio"),
    "linear_to_db": ("ratio", "db"),
    "dbm_to_watts": ("dbm", "watts"),
    "watts_to_dbm": ("watts", "dbm"),
    "linear_to_dbm": ("watts", "dbm"),
    "dbi_to_linear": ("dbi", "ratio"),
    "dbm_per_hz_to_watts_per_hz": ("dbm_per_hz", "watts_per_hz"),
    "milliwatts_to_watts": ("milliwatts", "watts"),
    "amplitude_ratio_to_db": ("ratio", "db"),
    "db_to_amplitude_ratio": ("db", "ratio"),
}

#: Call terminals that return their first argument's unit unchanged
#: (dtype/shape wrappers and elementwise-or-reducing NumPy helpers).
_FIRST_ARG_TRANSPARENT = frozenset(
    {
        "float",
        "abs",
        "fabs",
        "asarray",
        "array",
        "ascontiguousarray",
        "asfarray",
        "atleast_1d",
        "copy",
        "ravel",
        "squeeze",
        "sum",
        "mean",
        "median",
        "max",
        "min",
        "amax",
        "amin",
        "nanmax",
        "nanmin",
        "nansum",
        "nanmean",
        "cumsum",
        "sort",
        "clip",
        "broadcast_to",
        "repeat",
        "tile",
        "negative",
        "positive",
    }
)

#: Method terminals transparent to the receiver's unit (``x.reshape(...)``).
_METHOD_TRANSPARENT = frozenset(
    {
        "reshape",
        "astype",
        "copy",
        "ravel",
        "flatten",
        "squeeze",
        "sum",
        "mean",
        "max",
        "min",
        "clip",
        "item",
        "take",
        "transpose",
    }
)

#: Attribute views transparent to the base value's unit.
_ATTR_TRANSPARENT = frozenset({"T", "real", "flat"})


def _dotted(node: ast.AST) -> str:
    """Dotted form of a name/attribute chain (mirrors ``graph.dotted_name``).

    Kept local so this module stays import-free of the graph; the two must
    agree because call-site facts are matched back to ``CallSite`` records
    by ``(line, col, callee)``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def annotation_unit(node: Optional[ast.expr]) -> Unit:
    """Unit carried by an annotation expression (else UNKNOWN).

    Recognizes the alias names (``DB``, ``WattsLike``, ...), attribute
    forms (``units.DB``), string annotations, ``Optional[...]`` wrapping,
    and inline ``Annotated[..., UnitSpec("db")]`` spellings.
    """
    if node is None:
        return UNKNOWN
    if isinstance(node, ast.Name):
        return unit_named(annotation_unit_name(node.id))
    if isinstance(node, ast.Attribute):
        return unit_named(annotation_unit_name(node.attr))
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return unit_named(annotation_unit_name(node.value))
    if isinstance(node, ast.Subscript):
        head = ""
        if isinstance(node.value, ast.Name):
            head = node.value.id
        elif isinstance(node.value, ast.Attribute):
            head = node.value.attr
        if head == "Optional":
            return annotation_unit(node.slice)
        if head == "Annotated" and isinstance(node.slice, ast.Tuple):
            for meta in node.slice.elts[1:]:
                if (
                    isinstance(meta, ast.Call)
                    and _dotted(meta.func).split(".")[-1] == "UnitSpec"
                    and meta.args
                    and isinstance(meta.args[0], ast.Constant)
                    and isinstance(meta.args[0].value, str)
                ):
                    return unit_named(meta.args[0].value)
    return UNKNOWN


# --------------------------------------------------------------------- #
# Result data model (plain serializable tuples)                         #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class UnitDiag:
    """One per-file diagnostic (rule id RP301/RP303/RP304 + location)."""

    rule_id: str
    line: int
    col: int
    message: str

    def __post_init__(self) -> None:
        check_non_negative_int(self.line, "line")
        check_non_negative_int(self.col, "col")


@dataclass(frozen=True)
class CallArgUnits:
    """Inferred units of one call site's arguments (for RP302)."""

    qualname: str
    callee: str
    line: int
    col: int
    arg_units: Tuple[str, ...]
    kwarg_units: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        check_non_negative_int(self.line, "line")
        check_non_negative_int(self.col, "col")


@dataclass(frozen=True)
class FunctionUnits:
    """Annotation-declared parameter/return units of one function."""

    qualname: str
    params: Tuple[str, ...]
    param_units: Tuple[str, ...]
    return_unit: str


@dataclass(frozen=True)
class ModuleUnitFacts:
    """Everything unit inference learned about one module."""

    functions: Tuple[FunctionUnits, ...] = ()
    calls: Tuple[CallArgUnits, ...] = ()
    diags: Tuple[UnitDiag, ...] = ()


# --------------------------------------------------------------------- #
# The abstract interpreter                                              #
# --------------------------------------------------------------------- #


@dataclass
class _Frame:
    """One flow-sensitive scope: local names and ``self.<attr>`` states."""

    env: Dict[str, Unit] = field(default_factory=dict)
    self_env: Dict[str, Unit] = field(default_factory=dict)
    qualname: str = ""
    cls: Optional[str] = None

    def copy(self) -> "_Frame":
        return _Frame(
            env=dict(self.env),
            self_env=dict(self.self_env),
            qualname=self.qualname,
            cls=self.cls,
        )


def _terminates(body: List[ast.stmt]) -> bool:
    """True when a block cannot fall through (last stmt exits the flow)."""
    if not body:
        return False
    return isinstance(body[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue))


def _join_frames(into: _Frame, other: _Frame) -> None:
    """Merge ``other`` into ``into`` (in place) via the unit lattice join."""
    for key in set(into.env) | set(other.env):
        into.env[key] = join(into.env.get(key, UNKNOWN), other.env.get(key, UNKNOWN))
    for key in set(into.self_env) | set(other.self_env):
        into.self_env[key] = join(
            into.self_env.get(key, UNKNOWN), other.self_env.get(key, UNKNOWN)
        )


def _function_args(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[ast.arg]:
    args = fn.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


class _Inferencer:
    """Single-module abstract interpreter producing :class:`ModuleUnitFacts`."""

    def __init__(self, tree: ast.Module) -> None:
        self._tree = tree
        self._diags: List[UnitDiag] = []
        self._calls: List[CallArgUnits] = []
        self._sigs: List[FunctionUnits] = []
        self._module_env: Dict[str, Unit] = {}
        self._module_sigs: Dict[str, FunctionUnits] = {}
        self._method_sigs: Dict[Tuple[str, str], FunctionUnits] = {}
        #: class name -> {attr: declared unit} (annotations + @property returns)
        self._fields: Dict[str, Dict[str, Unit]] = {}

    # -- driver -------------------------------------------------------- #

    def run(self) -> ModuleUnitFacts:
        for node in self._tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sig = self._signature(node, node.name)
                self._module_sigs[node.name] = sig
                self._sigs.append(sig)
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)
        module_frame = _Frame(env=self._module_env, qualname="", cls=None)
        for node in self._tree.body:
            self._exec(node, module_frame)
        return ModuleUnitFacts(
            functions=tuple(self._sigs),
            calls=tuple(self._calls),
            diags=tuple(sorted(self._diags, key=lambda d: (d.line, d.col, d.rule_id))),
        )

    # -- signature / class tables (pass 1) ------------------------------ #

    def _signature(
        self, fn: "ast.FunctionDef | ast.AsyncFunctionDef", qualname: str
    ) -> FunctionUnits:
        arg_nodes = _function_args(fn)
        return FunctionUnits(
            qualname=qualname,
            params=tuple(arg.arg for arg in arg_nodes),
            param_units=tuple(
                annotation_unit(arg.annotation).name for arg in arg_nodes
            ),
            return_unit=annotation_unit(fn.returns).name,
        )

    @staticmethod
    def _is_property(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
        for deco in fn.decorator_list:
            if _dotted(deco).split(".")[-1] in ("property", "cached_property"):
                return True
        return False

    def _collect_class(self, node: ast.ClassDef) -> None:
        fields: Dict[str, Unit] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                declared = annotation_unit(stmt.annotation)
                if not declared.is_unknown:
                    fields[stmt.target.id] = declared
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sig = self._signature(stmt, f"{node.name}.{stmt.name}")
                self._method_sigs[(node.name, stmt.name)] = sig
                self._sigs.append(sig)
                if self._is_property(stmt) and sig.return_unit:
                    fields[stmt.name] = unit_named(sig.return_unit)
        self._fields[node.name] = fields

    def _field_unit(self, cls: Optional[str], attr: str) -> Unit:
        if cls is None:
            return UNKNOWN
        return self._fields.get(cls, {}).get(attr, UNKNOWN)

    # -- diagnostics ---------------------------------------------------- #

    def _diag(self, rule_id: str, node: ast.AST, message: str) -> None:
        self._diags.append(
            UnitDiag(
                rule_id=rule_id,
                line=int(getattr(node, "lineno", 1)),
                col=int(getattr(node, "col_offset", 0)) + 1,
                message=message,
            )
        )

    # -- statement execution ------------------------------------------- #

    def _exec_block(self, body: List[ast.stmt], frame: _Frame) -> None:
        for stmt in body:
            self._exec(stmt, frame)

    def _branch(self, body: List[ast.stmt], frame: _Frame) -> Tuple[_Frame, bool]:
        branch_frame = frame.copy()
        self._exec_block(body, branch_frame)
        return branch_frame, _terminates(body)

    def _exec(self, node: ast.stmt, frame: _Frame) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child = f"{frame.qualname}.{node.name}" if frame.qualname else node.name
            self._analyze_function(node, child, frame.cls)
        elif isinstance(node, ast.ClassDef):
            if frame.qualname == "":
                self._analyze_class(node)
            # nested classes inside functions: degrade to silence
        elif isinstance(node, ast.Assign):
            value_unit = self._eval(node.value, frame)
            for target in node.targets:
                self._assign_target(target, node.value, value_unit, None, frame)
        elif isinstance(node, ast.AnnAssign):
            declared = annotation_unit(node.annotation)
            value_unit = (
                self._eval(node.value, frame) if node.value is not None else UNKNOWN
            )
            self._assign_target(
                node.target,
                node.value,
                value_unit,
                declared if not declared.is_unknown else None,
                frame,
            )
        elif isinstance(node, ast.AugAssign):
            left = self._eval_store_target_as_load(node.target, frame)
            right = self._eval(node.value, frame)
            result = self._apply_binop(node.op, left, right, node)
            self._assign_target(node.target, None, result, None, frame)
        elif isinstance(node, ast.If):
            self._eval(node.test, frame)
            then_frame, then_ends = self._branch(node.body, frame)
            else_frame, else_ends = self._branch(node.orelse, frame)
            if then_ends and not else_ends:
                frame.env, frame.self_env = else_frame.env, else_frame.self_env
            elif else_ends and not then_ends:
                frame.env, frame.self_env = then_frame.env, then_frame.self_env
            else:
                frame.env, frame.self_env = then_frame.env, then_frame.self_env
                _join_frames(frame, else_frame)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_unit = self._eval(node.iter, frame)
            self._assign_target(node.target, None, iter_unit, None, frame)
            body_frame, _ = self._branch(node.body, frame)
            _join_frames(frame, body_frame)
            self._exec_block(node.orelse, frame)
        elif isinstance(node, ast.While):
            self._eval(node.test, frame)
            body_frame, _ = self._branch(node.body, frame)
            _join_frames(frame, body_frame)
            self._exec_block(node.orelse, frame)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                ctx_unit = self._eval(item.context_expr, frame)
                if item.optional_vars is not None:
                    self._assign_target(
                        item.optional_vars, None, ctx_unit, None, frame
                    )
            self._exec_block(node.body, frame)
        elif isinstance(node, ast.Try):
            pre = frame.copy()
            self._exec_block(node.body, frame)
            # Handlers observe a weakened state: anything the body may have
            # changed joins with its pre-body unit (the exception could have
            # fired anywhere).
            weakened = frame.copy()
            _join_frames(weakened, pre)
            exits: List[_Frame] = [] if _terminates(node.body) else [frame.copy()]
            for handler in node.handlers:
                handler_frame = weakened.copy()
                if handler.name:
                    handler_frame.env[handler.name] = UNKNOWN
                self._exec_block(handler.body, handler_frame)
                if not _terminates(handler.body):
                    exits.append(handler_frame)
            if exits:
                merged = exits[0]
                for other in exits[1:]:
                    _join_frames(merged, other)
                frame.env, frame.self_env = merged.env, merged.self_env
            self._exec_block(node.orelse, frame)
            self._exec_block(node.finalbody, frame)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._eval(node.value, frame)
        elif isinstance(node, ast.Expr):
            self._eval(node.value, frame)
        elif isinstance(node, ast.Assert):
            self._eval(node.test, frame)
            if node.msg is not None:
                self._eval(node.msg, frame)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._eval(node.exc, frame)
            if node.cause is not None:
                self._eval(node.cause, frame)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    frame.env.pop(target.id, None)
                else:
                    self._eval(target, frame)
        elif isinstance(
            node,
            (ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal, ast.Pass),
        ):
            return
        else:
            # Unmodeled statements (e.g. ``match``): walk children generically.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._exec(child, frame)
                elif isinstance(child, ast.expr):
                    self._eval(child, frame)

    # -- assignments (with the RP304 suffix/annotation checks) ---------- #

    def _eval_store_target_as_load(self, target: ast.expr, frame: _Frame) -> Unit:
        """Unit of an (aug)assignment target read as a value."""
        if isinstance(target, ast.Name):
            return self._load_name(target.id, frame)
        if isinstance(target, ast.Attribute):
            return self._eval_attribute(target, frame)
        if isinstance(target, ast.Subscript):
            return self._eval(target.value, frame)
        return UNKNOWN

    def _assign_target(
        self,
        target: ast.expr,
        value_node: Optional[ast.expr],
        value_unit: Unit,
        declared: Optional[Unit],
        frame: _Frame,
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target, target.id, value_unit, declared, frame)
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target)
            parts = dotted.split(".") if dotted else []
            if len(parts) == 2 and parts[0] == "self":
                attr = parts[1]
                field_decl = declared
                if field_decl is None:
                    known = self._field_unit(frame.cls, attr)
                    field_decl = known if not known.is_unknown else None
                self._check_store(target, attr, value_unit, field_decl)
                frame.self_env[attr] = (
                    field_decl
                    if field_decl is not None and value_unit.is_unknown
                    else value_unit
                )
            else:
                self._eval(target.value, frame)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: List[Optional[ast.expr]] = [None] * len(target.elts)
            element_units: List[Unit] = [UNKNOWN] * len(target.elts)
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                # Units were already computed element-wise during _eval of
                # the tuple; recomputing would double-report diags, so we
                # conservatively re-derive only side-effect-free units.
                element_units = [
                    self._pure_unit(elt, frame) for elt in value_node.elts
                ]
                elements = list(value_node.elts)
            for sub_target, sub_unit, _ in zip(
                target.elts, element_units, elements
            ):
                if isinstance(sub_target, ast.Starred):
                    sub_target = sub_target.value
                    sub_unit = UNKNOWN
                self._assign_target(sub_target, None, sub_unit, None, frame)
        elif isinstance(target, ast.Subscript):
            self._eval(target.value, frame)
            self._eval(target.slice, frame)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, None, UNKNOWN, None, frame)

    def _bind_name(
        self,
        node: ast.AST,
        name: str,
        value_unit: Unit,
        declared: Optional[Unit],
        frame: _Frame,
    ) -> None:
        self._check_store(node, name, value_unit, declared)
        if declared is not None:
            frame.env[name] = declared
        else:
            frame.env[name] = value_unit

    def _check_store(
        self,
        node: ast.AST,
        name: str,
        value_unit: Unit,
        declared: Optional[Unit],
    ) -> None:
        """The RP304 suffix/annotation/value agreement checks for one store."""
        prior = suffix_unit(name)
        if declared is not None:
            if not prior.is_unknown and prior != declared:
                self._diag(
                    "RP304",
                    node,
                    f"'{name}' is suffixed like {prior} but annotated "
                    f"{declared}; rename it or fix the annotation",
                )
            if not value_unit.is_unknown and value_unit != declared:
                self._diag(
                    "RP304",
                    node,
                    f"'{name}' is annotated {declared} but assigned a "
                    f"{value_unit} value",
                )
        elif not prior.is_unknown and not value_unit.is_unknown and prior != value_unit:
            self._diag(
                "RP304",
                node,
                f"'{name}' is suffixed like {prior} but assigned a "
                f"{value_unit} value",
            )

    def _pure_unit(self, node: ast.expr, frame: _Frame) -> Unit:
        """Unit of a side-effect-free re-read (no diag emission)."""
        if isinstance(node, ast.Name):
            return self._load_name(node.id, frame)
        if isinstance(node, ast.Attribute) and _dotted(node):
            return self._eval_attribute(node, frame)
        return UNKNOWN

    # -- functions / classes -------------------------------------------- #

    def _analyze_function(
        self,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        qualname: str,
        cls: Optional[str],
    ) -> None:
        frame = _Frame(qualname=qualname, cls=cls)
        for arg in _function_args(fn):
            declared = annotation_unit(arg.annotation)
            prior = suffix_unit(arg.arg)
            if not declared.is_unknown:
                if not prior.is_unknown and prior != declared:
                    self._diag(
                        "RP304",
                        arg,
                        f"parameter '{arg.arg}' is suffixed like {prior} "
                        f"but annotated {declared}",
                    )
                frame.env[arg.arg] = declared
        module_frame = _Frame(env=self._module_env)
        for default in [*fn.args.defaults, *fn.args.kw_defaults]:
            if default is not None:
                self._eval(default, module_frame)
        self._exec_block(fn.body, frame)

    def _analyze_class(self, node: ast.ClassDef) -> None:
        frame = _Frame(qualname=node.name, cls=node.name)
        self._exec_block(node.body, frame)

    # -- expression evaluation ------------------------------------------ #

    def _load_name(self, name: str, frame: _Frame) -> Unit:
        unit = frame.env.get(name, UNKNOWN)
        if not unit.is_unknown:
            return unit
        unit = self._module_env.get(name, UNKNOWN)
        if not unit.is_unknown:
            return unit
        return suffix_unit(name)

    def _eval_attribute(self, node: ast.Attribute, frame: _Frame) -> Unit:
        dotted = _dotted(node)
        if dotted:
            parts = dotted.split(".")
            if parts[0] == "self" and len(parts) == 2:
                attr = parts[1]
                unit = frame.self_env.get(attr, UNKNOWN)
                if not unit.is_unknown:
                    return unit
                unit = self._field_unit(frame.cls, attr)
                if not unit.is_unknown:
                    return unit
                return suffix_unit(attr)
            return suffix_unit(node.attr)
        base_unit = self._eval(node.value, frame)
        if node.attr in _ATTR_TRANSPARENT:
            return base_unit
        return UNKNOWN

    def _apply_binop(
        self, op: ast.operator, left: Unit, right: Unit, node: ast.AST
    ) -> Unit:
        result: Optional[OpResult] = None
        if isinstance(op, (ast.Add, ast.Sub)):
            result = add_units(left, right, is_sub=isinstance(op, ast.Sub))
        elif isinstance(op, ast.Mult):
            result = mul_units(left, right)
        elif isinstance(op, (ast.Div, ast.FloorDiv)):
            result = div_units(left, right)
        if result is None:
            return UNKNOWN
        if result.error:
            self._diag("RP301", node, result.error)
        return result.unit

    def _eval_call(self, node: ast.Call, frame: _Frame) -> Unit:
        callee = _dotted(node.func)
        terminal = callee.split(".")[-1] if callee else ""
        arg_units: List[Unit] = []
        starred = False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                starred = True
                self._eval(arg.value, frame)
                arg_units.append(UNKNOWN)
            else:
                arg_units.append(self._eval(arg, frame))
        kwarg_units: List[Tuple[str, Unit]] = []
        double_star = False
        for kw in node.keywords:
            unit = self._eval(kw.value, frame)
            if kw.arg is None:
                double_star = True
            else:
                kwarg_units.append((kw.arg, unit))
        if not callee:
            # Complex callable expression: evaluate it for nested diags.
            self._eval(node.func, frame)

        # 1. The units.* converters are built-in transfer functions.
        if terminal in CONVERTERS:
            expected_name, produced_name = CONVERTERS[terminal]
            if arg_units and not starred:
                got = arg_units[0]
                if not got.is_unknown:
                    if got.name == produced_name:
                        self._diag(
                            "RP303",
                            node,
                            f"redundant conversion: {terminal}() argument "
                            f"is already {got}",
                        )
                    elif got.name != expected_name:
                        # Prefer a converter consuming the actual unit and
                        # producing what this call meant to produce; fall
                        # back to any converter that consumes it.
                        candidates = [
                            name
                            for name, (inp, _out) in CONVERTERS.items()
                            if inp == got.name and name != "linear_to_dbm"
                        ]
                        suggestion = next(
                            (
                                name
                                for name in candidates
                                if CONVERTERS[name][1] == produced_name
                            ),
                            candidates[0] if candidates else "",
                        )
                        hint = f"; use {suggestion}() instead" if suggestion else ""
                        self._diag(
                            "RP303",
                            node,
                            f"{terminal}() expects {expected_name} but the "
                            f"argument is {got}{hint}",
                        )
            return unit_named(produced_name)

        # 2. Record argument units for the cross-module RP302 check.
        if (
            callee
            and not starred
            and not double_star
            and (
                any(not unit.is_unknown for unit in arg_units)
                or any(not unit.is_unknown for _, unit in kwarg_units)
            )
        ):
            self._calls.append(
                CallArgUnits(
                    qualname=frame.qualname or "<module>",
                    callee=callee,
                    line=int(node.lineno),
                    col=int(node.col_offset) + 1,
                    arg_units=tuple(unit.name for unit in arg_units),
                    kwarg_units=tuple(
                        (name, unit.name) for name, unit in kwarg_units
                    ),
                )
            )

        # 3. Locally declared functions/methods with annotated returns.
        parts = callee.split(".") if callee else []
        if len(parts) == 1:
            sig = self._module_sigs.get(parts[0])
            if sig is not None and sig.return_unit:
                return unit_named(sig.return_unit)
        elif len(parts) == 2 and parts[0] == "self" and frame.cls is not None:
            method_sig = self._method_sigs.get((frame.cls, parts[1]))
            if method_sig is not None and method_sig.return_unit:
                return unit_named(method_sig.return_unit)

        # 4. NumPy/builtin broadcasting wrappers.
        if terminal in ("maximum", "minimum") and len(arg_units) >= 2:
            return join(arg_units[0], arg_units[1])
        if terminal == "where" and len(arg_units) == 3:
            return join(arg_units[1], arg_units[2])
        if terminal in ("full", "full_like") and len(arg_units) >= 2:
            return arg_units[1]
        if terminal == "sqrt" and arg_units:
            return arg_units[0] if arg_units[0].name == "ratio" else UNKNOWN
        if isinstance(node.func, ast.Attribute) and terminal in _METHOD_TRANSPARENT:
            receiver = _dotted(node.func.value)
            if receiver and receiver.split(".")[0] not in ("np", "numpy"):
                return self._pure_unit(node.func.value, frame)
        if terminal in _FIRST_ARG_TRANSPARENT and arg_units and not starred:
            return arg_units[0]
        return UNKNOWN

    def _eval_comprehension(self, node: ast.expr, frame: _Frame) -> Unit:
        comp_frame = frame.copy()
        generators = getattr(node, "generators", [])
        for gen in generators:
            iter_unit = self._eval(gen.iter, comp_frame)
            self._assign_target(gen.target, None, iter_unit, None, comp_frame)
            for cond in gen.ifs:
                self._eval(cond, comp_frame)
        if isinstance(node, ast.DictComp):
            self._eval(node.key, comp_frame)
            self._eval(node.value, comp_frame)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._eval(node.elt, comp_frame)
        return UNKNOWN

    def _eval(self, node: ast.expr, frame: _Frame) -> Unit:
        if isinstance(node, ast.Constant):
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self._load_name(node.id, frame)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, frame)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, frame)
            right = self._eval(node.right, frame)
            return self._apply_binop(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, frame)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return operand
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, frame)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, frame)
            return join(self._eval(node.body, frame), self._eval(node.orelse, frame))
        if isinstance(node, ast.Compare):
            self._eval(node.left, frame)
            for comparator in node.comparators:
                self._eval(comparator, frame)
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value, frame)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, frame)
            self._eval(node.slice, frame)
            return base
        if isinstance(node, ast.Slice):
            for bound in (node.lower, node.upper, node.step):
                if bound is not None:
                    self._eval(bound, frame)
            return UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                if isinstance(elt, ast.Starred):
                    self._eval(elt.value, frame)
                else:
                    self._eval(elt, frame)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, frame)
            for value in node.values:
                self._eval(value, frame)
            return UNKNOWN
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node, frame)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, frame)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value, frame)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            unit = self._eval(node.value, frame)
            self._bind_name(node.target, node.target.id, unit, None, frame)
            return unit
        if isinstance(node, ast.Starred):
            return self._eval(node.value, frame)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, frame)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        return UNKNOWN


@lru_cache(maxsize=8)
def infer_module(tree: ast.Module) -> ModuleUnitFacts:
    """Infer unit facts for one parsed module (memoized per tree object).

    The memoization keys on the tree's object identity: within one
    engine pass the RP301/RP303/RP304 rules and the summary builder all
    see the same parse, so inference runs once per file.
    """
    return _Inferencer(tree).run()
