"""The RP-rule catalogue.

Each rule encodes one convention this repository relies on for silent
correctness (see ``docs/static_analysis.md`` for the rationale and bad/good
examples):

========  ==============================================================
RP101     no inline dB/linear math outside :mod:`repro.utils.units`
RP102     no ``numpy.random`` construction outside :mod:`repro.utils.rng`
RP103     no wall-clock / stdlib-``random`` nondeterminism in library code
RP104     public numeric parameters are validated at the API boundary
RP105     ``__all__`` entries must exist in the module namespace
RP106     no mutable default arguments
RP107     no bare ``time.sleep`` in ``repro.service`` (use ``RetryPolicy``)
========  ==============================================================
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from repro.lintkit.engine import ModuleContext, Rule, register
from repro.lintkit.findings import Finding
from repro.lintkit.unittypes import ANNOTATION_UNITS

__all__ = [
    "InlineDbConversionRule",
    "NumpyRandomOutsideRngRule",
    "NondeterminismRule",
    "UnvalidatedNumericParamRule",
    "DunderAllConsistencyRule",
    "MutableDefaultRule",
    "ServiceBareSleepRule",
]


# --------------------------------------------------------------------- #
# Shared AST helpers                                                    #
# --------------------------------------------------------------------- #


def _is_const(node: ast.AST, *values: float) -> bool:
    """True if ``node`` is a numeric constant equal to one of ``values``."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value) in values
    )


def _call_name(func: ast.AST) -> str:
    """Terminal name of a call target: ``np.log10`` -> ``log10``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dotted_name(node: ast.AST) -> str:
    """Best-effort dotted form of an attribute chain (``np.random.default_rng``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_log10_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_name(node.func) == "log10"


def _has_db_divisor(node: ast.AST) -> bool:
    """True if the expression contains a division by 10 or 20 (a dB scaling)."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.BinOp)
            and isinstance(sub.op, ast.Div)
            and _is_const(sub.right, 10.0, 20.0)
        ):
            return True
    return False


def _mult_has_db_factor(node: ast.AST, depth: int = 2) -> bool:
    """True if a multiplication chain carries a literal 10/20 factor.

    Handles both ``10 * log10(x)`` and the one-level-nested shape
    ``10 * n * log10(x)`` (which parses as ``(10 * n) * log10(x)``).
    """
    if _is_const(node, 10.0, 20.0):
        return True
    if depth <= 0:
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return _mult_has_db_factor(node.left, depth - 1) or _mult_has_db_factor(
            node.right, depth - 1
        )
    return False


# --------------------------------------------------------------------- #
# RP101 — inline dB/linear conversions                                  #
# --------------------------------------------------------------------- #


@register
class InlineDbConversionRule(Rule):
    """Flag ``10 ** (x / 10)``, ``10 * log10(x)`` and friends.

    All dB↔linear conversion must flow through :mod:`repro.utils.units`:
    a 3 dB slip from a duplicated, subtly different conversion silently
    flips feasibility verdicts in the interference-constrained analyses.
    Exempt: ``utils/units.py`` itself (the one audited implementation) and
    test modules (which re-derive conversions as independent oracles).
    """

    rule_id = "RP101"
    summary = "inline dB/linear conversion outside repro.utils.units"
    library_only = True

    def applies_to(self, ctx: ModuleContext) -> bool:
        if ctx.path_endswith("utils", "units.py"):
            return False
        return super().applies_to(ctx)

    def _violation(self, node: ast.AST) -> Optional[str]:
        # 10 ** (x / 10)  or  10 ** (x / 20)
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Pow)
            and _is_const(node.left, 10.0)
            and _has_db_divisor(node.right)
        ):
            return "10 ** (x / 10)-style conversion"
        # np.power(10, x / 10)
        if (
            isinstance(node, ast.Call)
            and _call_name(node.func) == "power"
            and len(node.args) >= 2
            and _is_const(node.args[0], 10.0)
            and _has_db_divisor(node.args[1])
        ):
            return "np.power(10, x / 10)-style conversion"
        # 10 * log10(x)  /  20 * log10(x)  /  10 * n * log10(x)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            for side, other in ((node.left, node.right), (node.right, node.left)):
                if _is_log10_call(side) and _mult_has_db_factor(other):
                    return "10 * log10(x)-style conversion"
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            what = self._violation(node)
            if what is not None:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{what}; route it through repro.utils.units "
                    "(db_to_linear / linear_to_db / dbm_to_watts / ...)",
                )


# --------------------------------------------------------------------- #
# RP102 — numpy.random outside utils/rng                                #
# --------------------------------------------------------------------- #

#: numpy.random attributes that are types/constants, not stream constructors;
#: referencing them (e.g. in ``isinstance`` checks or annotations) is fine.
_NP_RANDOM_NON_CALLS = frozenset({"Generator", "BitGenerator", "RandomState"})


@register
class NumpyRandomOutsideRngRule(Rule):
    """Flag ``np.random.*`` calls (and imported aliases) outside utils/rng.

    Hidden generator construction breaks the seed-threading contract that
    makes every experiment table regenerate bit-for-bit: library code must
    accept an ``rng`` argument and coerce it with
    :func:`repro.utils.rng.as_rng` (or derive streams with ``spawn_rngs`` /
    ``spawn_seed_sequences``).
    """

    rule_id = "RP102"
    summary = "numpy.random call outside repro.utils.rng"
    library_only = True

    def applies_to(self, ctx: ModuleContext) -> bool:
        if ctx.path_endswith("utils", "rng.py"):
            return False
        return super().applies_to(ctx)

    @staticmethod
    def _numpy_random_imports(tree: ast.Module) -> Set[str]:
        """Local names bound by ``from numpy.random import ...``."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imported = self._numpy_random_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            parts = dotted.split(".")
            if (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_NON_CALLS
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"direct call to {dotted}; use repro.utils.rng "
                    "(as_rng / spawn_rngs / spawn_seed_sequences)",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in imported
                and node.func.id not in _NP_RANDOM_NON_CALLS
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"call to numpy.random.{node.func.id} (imported directly); "
                    "use repro.utils.rng (as_rng / spawn_rngs / spawn_seed_sequences)",
                )


# --------------------------------------------------------------------- #
# RP103 — nondeterminism sources in library code                        #
# --------------------------------------------------------------------- #

#: Dotted call targets whose results differ run-to-run.
_NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.perf_counter",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
    }
)


@register
class NondeterminismRule(Rule):
    """Flag wall-clock reads, ``os.urandom`` and the stdlib ``random`` module.

    Library results must be pure functions of their inputs and the seeds
    threaded through ``rng`` arguments; time- or OS-entropy-dependent values
    make experiment tables unreproducible in ways no seed can fix.
    (Benchmark harnesses live outside ``src/`` and may time freely.)
    """

    rule_id = "RP103"
    summary = "nondeterminism source (wall clock, os entropy, stdlib random)"
    library_only = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        stdlib_random_imported = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_random_imported = True
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            "stdlib 'random' import; use repro.utils.rng "
                            "generators seeded through as_rng",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "import from stdlib 'random'; use repro.utils.rng "
                    "generators seeded through as_rng",
                )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted in _NONDETERMINISTIC_CALLS:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"call to nondeterministic {dotted}; library results "
                        "must depend only on inputs and threaded seeds",
                    )
                elif stdlib_random_imported and dotted.startswith("random."):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"call to stdlib {dotted}; use repro.utils.rng "
                        "generators seeded through as_rng",
                    )


# --------------------------------------------------------------------- #
# RP104 — unvalidated public numeric parameters                         #
# --------------------------------------------------------------------- #

# Unit aliases (``Watts``, ``DBLike``, ...) annotate plain floats/arrays,
# so fields carrying them still owe RP104 its range validation.
_NUMERIC_ANNOTATIONS = frozenset({"int", "float"}) | frozenset(ANNOTATION_UNITS)


def _is_numeric_annotation(annotation: Optional[ast.AST]) -> bool:
    """True for ``int`` / ``float`` (possibly Optional or string-quoted)."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in _NUMERIC_ANNOTATIONS
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip() in _NUMERIC_ANNOTATIONS
    if isinstance(annotation, ast.Subscript):
        # Optional[float] / typing.Optional["int"]
        if _call_name(annotation.value) == "Optional":
            return _is_numeric_annotation(annotation.slice)
        return False
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # float | None, int | float
        sides = (annotation.left, annotation.right)
        numeric = [s for s in sides if not (_is_const_none(s))]
        return bool(numeric) and all(_is_numeric_annotation(s) for s in numeric)
    return False


def _is_const_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_dataclass_decorated(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _call_name(target) == "dataclass":
            return True
    return False


def _validated_names(func: ast.FunctionDef) -> Set[str]:
    """Parameter/field names that a guard in ``func`` actually looks at.

    A name counts as validated when it appears either

    * in the arguments of a ``check_*`` call (the :mod:`repro.utils.validation`
      helpers), or
    * in the test of an ``if`` whose body raises (a hand-rolled guard).

    Both ``x`` and ``self.x`` register the name ``x``.
    """
    names: Set[str] = set()

    def collect(expr: ast.AST) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)

    for node in ast.walk(func):
        if isinstance(node, ast.Call) and _call_name(node.func).startswith("check_"):
            for arg in node.args:
                collect(arg)
            for keyword in node.keywords:
                if keyword.value is not None:
                    collect(keyword.value)
        elif isinstance(node, ast.If) and any(
            isinstance(sub, ast.Raise) for sub in ast.walk(node)
        ):
            collect(node.test)
    return names


@register
class UnvalidatedNumericParamRule(Rule):
    """Public numeric parameters must be validated at the API boundary.

    Every public dataclass field or ``__init__`` parameter annotated ``int``
    or ``float`` must be covered by a :mod:`repro.utils.validation` checker
    (preferred) or an explicit raising guard in ``__init__`` /
    ``__post_init__``, so a mis-configured experiment fails with a named
    parameter instead of an inscrutable NumPy error deep in a kernel.
    """

    rule_id = "RP104"
    summary = "public numeric parameter without boundary validation"
    library_only = True

    @staticmethod
    def _class_validators(cls: ast.ClassDef) -> Set[str]:
        names: Set[str] = set()
        for node in cls.body:
            if isinstance(node, ast.FunctionDef) and node.name in (
                "__init__",
                "__post_init__",
            ):
                names |= _validated_names(node)
        return names

    def _dataclass_findings(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        validated = self._class_validators(cls)
        for node in cls.body:
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and not node.target.id.startswith("_")
                and _is_numeric_annotation(node.annotation)
                and node.target.id not in validated
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"numeric field {cls.name}.{node.target.id} is never "
                    "validated; add a repro.utils.validation check in "
                    "__post_init__",
                )

    def _init_findings(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        init = next(
            (
                node
                for node in cls.body
                if isinstance(node, ast.FunctionDef) and node.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        validated = _validated_names(init)
        for arg in list(init.args.args) + list(init.args.kwonlyargs):
            if (
                arg.arg != "self"
                and not arg.arg.startswith("_")
                and _is_numeric_annotation(arg.annotation)
                and arg.arg not in validated
            ):
                yield ctx.finding(
                    self.rule_id,
                    arg,
                    f"numeric parameter {cls.name}.__init__({arg.arg}) is "
                    "never validated; add a repro.utils.validation check",
                )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            if _is_dataclass_decorated(node):
                yield from self._dataclass_findings(ctx, node)
            else:
                yield from self._init_findings(ctx, node)


# --------------------------------------------------------------------- #
# RP105 — __all__ consistency                                           #
# --------------------------------------------------------------------- #


@register
class DunderAllConsistencyRule(Rule):
    """``__all__`` must be a literal list of names the module really defines."""

    rule_id = "RP105"
    summary = "__all__ inconsistent with the module namespace"

    @staticmethod
    def _module_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, (ast.If, ast.Try)):
                # names bound conditionally (TYPE_CHECKING blocks, fallbacks)
                for sub in ast.walk(node):
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        names.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            for leaf in ast.walk(target):
                                if isinstance(leaf, ast.Name):
                                    names.add(leaf.id)
                    elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            names.add(alias.asname or alias.name.split(".")[0])
        return names

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        dunder_all: Optional[ast.Assign] = None
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                dunder_all = node
        if dunder_all is None:
            return
        value = dunder_all.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            yield ctx.finding(
                self.rule_id,
                dunder_all,
                "__all__ must be a literal list/tuple of strings",
            )
            return
        entries: List[Tuple[str, ast.AST]] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries.append((element.value, element))
            else:
                yield ctx.finding(
                    self.rule_id, element, "__all__ entries must be string literals"
                )
        defined = self._module_names(ctx.tree)
        seen: Set[str] = set()
        for name, element in entries:
            if name in seen:
                yield ctx.finding(
                    self.rule_id, element, f"duplicate __all__ entry {name!r}"
                )
            seen.add(name)
            if name not in defined:
                yield ctx.finding(
                    self.rule_id,
                    element,
                    f"__all__ exports {name!r} but the module never defines it",
                )


# --------------------------------------------------------------------- #
# RP106 — mutable default arguments                                     #
# --------------------------------------------------------------------- #

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


# --------------------------------------------------------------------- #
# RP107 — bare time.sleep in the service layer                          #
# --------------------------------------------------------------------- #


@register
class ServiceBareSleepRule(Rule):
    """Flag ``time.sleep`` usage in ``repro.service`` outside ``retry.py``.

    Hand-rolled ``time.sleep`` retry loops block threads for fixed,
    unjittered intervals, synchronize stampedes against an overloaded
    server and make tests slow and flaky.  All waiting in the service
    layer must flow through :class:`repro.service.retry.RetryPolicy` and
    its injectable sleeper (``retry.default_sleeper`` is the one sanctioned
    ``time.sleep`` call site).  Both calls *and* bare references are
    flagged, so aliasing ``time.sleep`` into a default argument cannot
    dodge the rule.
    """

    rule_id = "RP107"
    summary = "bare time.sleep in repro.service (use RetryPolicy / a sleeper)"
    library_only = True

    def applies_to(self, ctx: ModuleContext) -> bool:
        parts = Path(ctx.path).parts
        in_service = (
            "repro" in parts
            and "service" in parts
            and parts.index("service") == parts.index("repro") + 1
        )
        if not in_service or ctx.path_endswith("service", "retry.py"):
            return False
        return super().applies_to(ctx)

    @staticmethod
    def _sleep_imports(tree: ast.Module) -> Set[str]:
        """Local names bound by ``from time import sleep`` (and aliases)."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        names.add(alias.asname or alias.name)
        return names

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imported = self._sleep_imports(ctx.tree)
        message = (
            "bare time.sleep in service code; wait through "
            "repro.service.retry (RetryPolicy backoff + injectable sleeper)"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and _dotted_name(node) == "time.sleep":
                yield ctx.finding(self.rule_id, node, message)
            elif isinstance(node, ast.ImportFrom) and node.module == "time" and any(
                alias.name == "sleep" for alias in node.names
            ):
                yield ctx.finding(self.rule_id, node, message)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in imported
            ):
                yield ctx.finding(self.rule_id, node, message)


@register
class MutableDefaultRule(Rule):
    """Flag mutable default argument values (shared across calls)."""

    rule_id = "RP106"
    summary = "mutable default argument"

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults: List[Optional[ast.expr]] = list(node.args.defaults)
            defaults.extend(node.args.kw_defaults)
            for default in defaults:
                if default is not None and self._is_mutable(default):
                    yield ctx.finding(
                        self.rule_id,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None (or use dataclasses.field)",
                    )
