"""The physical-unit lattice behind the RP3xx dimensional-analysis tier.

The paper's energy model mixes decibel-domain bookkeeping (link margin in
dB, noise PSD in dBm/Hz, antenna gain in dBi) with SI-unit computation
(watts, joules, meters, hertz).  This module gives the unit checker a tiny
abstract domain to reason about that mixture:

* a :class:`Unit` is an abstract value — one of a fixed vocabulary of
  dB-domain and linear-domain units, plus the top element :data:`UNKNOWN`;
* :func:`join` merges units at control-flow joins (equal units survive,
  anything else degrades to :data:`UNKNOWN`);
* :func:`add_units`, :func:`mul_units` and :func:`div_units` are the
  abstract transfer functions for arithmetic.  Each returns an
  :class:`OpResult` carrying the result unit *and* an optional error string
  for combinations that are dimensionally meaningless (dB + watts).

The design principle is asymmetric: the lattice must *never* invent a unit
it cannot defend (every unclear case maps to :data:`UNKNOWN`, which absorbs
through every operation and can never trigger a finding), but within the
known vocabulary it is opinionated — adding a dB-domain value to a
linear-domain one is an error, multiplying two dB-domain values is an
error, and a handful of physically meaningful products (W x s = J,
W/Hz x Hz = W) are tracked exactly.

Also defined here, because they are part of the same unit vocabulary:

* :data:`SUFFIX_UNITS` — the repo's ``_w/_db/_dbm/_s/_m/_hz`` naming
  convention, used by the checker as a *weak prior* for otherwise
  un-annotated names (:func:`suffix_unit`);
* :data:`ANNOTATION_UNITS` — the ``typing.Annotated`` alias names exported
  by :mod:`repro.utils.units` (``DB``, ``Watts``, ``JoulesLike``, ...)
  mapped to their unit names (:func:`annotation_unit_name`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Unit",
    "OpResult",
    "UNKNOWN",
    "UNITS",
    "DB_DOMAIN",
    "LINEAR_DOMAIN",
    "SUFFIX_UNITS",
    "ANNOTATION_UNITS",
    "unit_named",
    "suffix_unit",
    "annotation_unit_name",
    "join",
    "add_units",
    "mul_units",
    "div_units",
]

#: Domain tag for decibel-style (logarithmic) units.
DB_DOMAIN = "db"
#: Domain tag for linear / SI units (a pure ratio counts as linear).
LINEAR_DOMAIN = "linear"


@dataclass(frozen=True)
class Unit:
    """One abstract unit: a name and the domain it computes in.

    ``Unit("", "")`` is the top element :data:`UNKNOWN` — the unit of any
    value the checker cannot pin down.  It absorbs through every operation
    and never participates in a finding.
    """

    name: str
    domain: str

    @property
    def is_unknown(self) -> bool:
        """True for the absorbing top element."""
        return not self.name

    def __str__(self) -> str:
        return self.name or "unknown"


#: The absorbing top element.
UNKNOWN = Unit("", "")

#: The fixed unit vocabulary, by name.
UNITS: Dict[str, Unit] = {
    unit.name: unit
    for unit in (
        Unit("db", DB_DOMAIN),
        Unit("dbm", DB_DOMAIN),
        Unit("dbi", DB_DOMAIN),
        Unit("dbm_per_hz", DB_DOMAIN),
        Unit("ratio", LINEAR_DOMAIN),
        Unit("watts", LINEAR_DOMAIN),
        Unit("milliwatts", LINEAR_DOMAIN),
        Unit("watts_per_hz", LINEAR_DOMAIN),
        Unit("joules", LINEAR_DOMAIN),
        Unit("seconds", LINEAR_DOMAIN),
        Unit("meters", LINEAR_DOMAIN),
        Unit("hertz", LINEAR_DOMAIN),
        Unit("bits", LINEAR_DOMAIN),
    )
}

#: dB-domain units that are *relative* offsets (a gain/margin, not a level);
#: adding one to an absolute dB-domain level keeps the level's unit.
_RELATIVE_DB = frozenset({"db", "dbi"})

#: Physically meaningful products the lattice tracks exactly
#: (symmetric: ``a*b`` and ``b*a`` both resolve).
_PRODUCTS: Dict[Tuple[str, str], str] = {
    ("watts", "seconds"): "joules",
    ("watts_per_hz", "hertz"): "watts",
    ("joules", "hertz"): "watts",
}

#: Physically meaningful quotients (ordered: numerator, denominator).
#: ``joules / bits`` stays joules by repo convention: per-bit energies
#: (``e_bar_b``) are carried in J throughout the energy model.
_QUOTIENTS: Dict[Tuple[str, str], str] = {
    ("joules", "seconds"): "watts",
    ("joules", "watts"): "seconds",
    ("watts", "hertz"): "watts_per_hz",
    ("watts", "watts_per_hz"): "hertz",
    ("joules", "bits"): "joules",
}

#: Name-suffix convention -> unit name, checked longest-suffix-first so
#: ``_dbm_hz`` wins over ``_hz`` and ``_dbm`` over ``_m``.
SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = tuple(
    sorted(
        {
            "_db": "db",
            "_dbm": "dbm",
            "_dbi": "dbi",
            "_dbm_hz": "dbm_per_hz",
            "_dbm_per_hz": "dbm_per_hz",
            "_w": "watts",
            "_watts": "watts",
            "_mw": "milliwatts",
            "_w_hz": "watts_per_hz",
            "_w_per_hz": "watts_per_hz",
            "_j": "joules",
            "_joules": "joules",
            "_s": "seconds",
            "_sec": "seconds",
            "_secs": "seconds",
            "_seconds": "seconds",
            "_m": "meters",
            "_meters": "meters",
            "_hz": "hertz",
            "_bit": "bits",
            "_bits": "bits",
            "_linear": "ratio",
            "_lin": "ratio",
            "_ratio": "ratio",
        }.items(),
        key=lambda item: len(item[0]),
        reverse=True,
    )
)

#: ``typing.Annotated`` alias name -> unit name.  Each base alias has a
#: scalar form (``DB``), an ``ArrayLike`` form (``DBLike``) and an
#: ``np.ndarray`` form (``DBArray``); all three carry the same unit.
_ALIAS_BASES: Dict[str, str] = {
    "DB": "db",
    "DBm": "dbm",
    "DBi": "dbi",
    "DBmPerHz": "dbm_per_hz",
    "LinearRatio": "ratio",
    "Watts": "watts",
    "Milliwatts": "milliwatts",
    "WattsPerHz": "watts_per_hz",
    "Joules": "joules",
    "Seconds": "seconds",
    "Meters": "meters",
    "Hertz": "hertz",
    "Bits": "bits",
}

ANNOTATION_UNITS: Dict[str, str] = {
    variant: unit_name
    for alias, unit_name in _ALIAS_BASES.items()
    for variant in (alias, f"{alias}Like", f"{alias}Array")
}


def unit_named(name: str) -> Unit:
    """The unit called ``name``; unknown names map to :data:`UNKNOWN`."""
    return UNITS.get(name, UNKNOWN)


def suffix_unit(identifier: str) -> Unit:
    """Weak-prior unit implied by an identifier's suffix (else UNKNOWN)."""
    for suffix, name in SUFFIX_UNITS:
        if identifier.endswith(suffix) and len(identifier) > len(suffix):
            return UNITS[name]
    return UNKNOWN


def annotation_unit_name(alias: str) -> str:
    """Unit name carried by an ``Annotated`` alias name (else ``""``)."""
    return ANNOTATION_UNITS.get(alias, "")


@dataclass(frozen=True)
class OpResult:
    """Result of one abstract arithmetic step: a unit, maybe an error."""

    unit: Unit
    error: Optional[str] = None


def join(a: Unit, b: Unit) -> Unit:
    """Control-flow merge: equal units survive, anything else is UNKNOWN."""
    if a == b:
        return a
    return UNKNOWN


def _mixed(a: Unit, b: Unit, op: str) -> OpResult:
    db_side = a if a.domain == DB_DOMAIN else b
    lin_side = b if db_side is a else a
    return OpResult(
        UNKNOWN,
        f"mixed-domain arithmetic: {db_side} ({op}) {lin_side} combines a "
        f"dB-domain value with a linear-domain one; convert with "
        f"repro.utils.units first",
    )


def add_units(a: Unit, b: Unit, is_sub: bool = False) -> OpResult:
    """Abstract ``a + b`` (or ``a - b``).

    * UNKNOWN absorbs silently.
    * dB-domain with linear-domain is the canonical RP301 error.
    * within the dB domain: a relative offset (dB, dBi) added to any
      dB-domain value keeps that value's unit; the *difference* of two
      equal absolute levels (dBm - dBm) is a relative dB; equal units
      otherwise keep their unit.
    * within the linear domain only equal units survive; anything else
      degrades to UNKNOWN without complaint (the lattice does not try to
      prove SI consistency of sums it cannot see the provenance of).
    """
    if a.is_unknown or b.is_unknown:
        return OpResult(UNKNOWN)
    if a.domain != b.domain:
        return _mixed(a, b, "-" if is_sub else "+")
    if a.domain == DB_DOMAIN:
        if a == b:
            if is_sub and a.name not in _RELATIVE_DB:
                # dBm - dBm (or dBm/Hz - dBm/Hz) is a relative ratio in dB.
                return OpResult(UNITS["db"])
            return OpResult(a)
        if b.name in _RELATIVE_DB:
            return OpResult(a)
        if a.name in _RELATIVE_DB and not is_sub:
            return OpResult(b)
        return OpResult(UNKNOWN)
    if a == b:
        return OpResult(a)
    return OpResult(UNKNOWN)


def mul_units(a: Unit, b: Unit) -> OpResult:
    """Abstract ``a * b``.

    dB-domain values cannot be multiplied by anything with a known unit
    (scaling by an untracked literal stays silent because literals are
    UNKNOWN).  In the linear domain a pure ratio is transparent and the
    :data:`_PRODUCTS` table resolves the tracked physical products; every
    other combination degrades to UNKNOWN.
    """
    if a.is_unknown or b.is_unknown:
        return OpResult(UNKNOWN)
    if a.domain == DB_DOMAIN or b.domain == DB_DOMAIN:
        if a.domain == b.domain:
            return OpResult(
                UNKNOWN,
                f"dB-domain arithmetic: {a} * {b} multiplies two decibel "
                f"values; dB-domain gains combine by addition",
            )
        return _mixed(a, b, "*")
    if a.name == "ratio":
        return OpResult(b)
    if b.name == "ratio":
        return OpResult(a)
    product = _PRODUCTS.get((a.name, b.name)) or _PRODUCTS.get((b.name, a.name))
    if product is not None:
        return OpResult(UNITS[product])
    return OpResult(UNKNOWN)


def div_units(a: Unit, b: Unit) -> OpResult:
    """Abstract ``a / b`` (true or floor division).

    Mirrors :func:`mul_units`: dB-domain operands with any known partner
    are an error, a ratio denominator is transparent, equal linear units
    cancel to a ratio, and :data:`_QUOTIENTS` resolves the tracked
    physical quotients.
    """
    if a.is_unknown or b.is_unknown:
        return OpResult(UNKNOWN)
    if a.domain == DB_DOMAIN or b.domain == DB_DOMAIN:
        if a.name in _RELATIVE_DB and b.name in _RELATIVE_DB:
            # A quotient of two relative spans (slope per 3 dB, gain per
            # dBi) is a legitimate dimensionless ratio.
            return OpResult(UNITS["ratio"])
        if a.domain == b.domain:
            return OpResult(
                UNKNOWN,
                f"dB-domain arithmetic: {a} / {b} divides decibel values; "
                f"dB-domain gains combine by subtraction",
            )
        return _mixed(a, b, "/")
    if b.name == "ratio":
        return OpResult(a)
    if a == b:
        return OpResult(UNITS["ratio"])
    quotient = _QUOTIENTS.get((a.name, b.name))
    if quotient is not None:
        return OpResult(UNITS[quotient])
    return OpResult(UNKNOWN)
