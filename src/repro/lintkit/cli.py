"""Command-line interface: ``python -m repro.lintkit src tests``.

Exit status 0 when the tree is clean, 1 when findings remain, 2 on usage
errors — the contract both the tier-1 gate (``tests/test_lintkit_clean.py``)
and CI rely on.  With ``--baseline``, findings recorded in the committed
baseline file do not affect the exit status; everything new still does.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lintkit.baseline import Baseline, load_baseline, partition, write_baseline
from repro.lintkit.cache import AnalysisCache
from repro.lintkit.engine import (
    LintStats,
    all_project_rules,
    all_rules,
    analyze_paths,
)
from repro.lintkit.findings import Finding
from repro.lintkit.sarif import sarif_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lintkit",
        description="Repo-specific AST lint: unit-safety, RNG discipline, "
        "validation coverage (RP101-RP107), project-wide dataflow rules "
        "over the call graph (RP201-RP206), and flow-sensitive physical-"
        "units dimensional analysis (RP301-RP304; --select RP3).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the findings (in the chosen format) to FILE — "
        "used by CI to upload the report as an artifact",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="accepted-findings file: baselined findings are reported "
        "but do not fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="accept the current findings: write their fingerprints to "
        "FILE and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="worker processes for parsing (default: the CPU count)",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="ignore the content-hash analysis cache (REPRO_NO_CACHE=1 "
        "does the same)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="override the analysis-cache directory",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the project-graph tier (RP2xx rules)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule finding counts, cache hit rates and "
        "suppression totals",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe the registered rules and exit",
    )
    return parser


def _render(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "json":
        return json.dumps([finding.to_dict() for finding in findings], indent=2)
    if fmt == "sarif":
        return sarif_json(findings)
    return "\n".join(finding.format() for finding in findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = "library only" if rule.library_only else "library + tests"
            print(f"{rule.rule_id}  {rule.summary}  [{scope}]")
        for project_rule in all_project_rules():
            print(
                f"{project_rule.rule_id}  {project_rule.summary}  "
                "[project graph]"
            )
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    stats = LintStats()
    cache = AnalysisCache(args.cache_dir) if args.cache_dir else None
    try:
        findings = analyze_paths(
            args.paths,
            select=select,
            stats=stats,
            jobs=args.jobs,
            cache=cache,
            incremental=not args.no_incremental,
            project=not args.no_project,
        )
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    baseline = Baseline()
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    new_findings, baselined = partition(findings, baseline)
    stats.baselined = len(baselined)

    rendered = _render(findings, args.format)
    if rendered:
        print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if args.statistics:
        for rule_id in sorted(stats.per_rule):
            print(f"{rule_id}: {stats.per_rule[rule_id]} finding(s)", file=sys.stderr)
        print(
            f"checked {stats.files} file(s) "
            f"({stats.parsed} parsed, {stats.cached} from cache), "
            f"{len(findings)} finding(s), {stats.baselined} baselined, "
            f"{stats.suppressed} suppressed",
            file=sys.stderr,
        )
    if args.format == "text" and new_findings:
        print(f"{len(new_findings)} finding(s)", file=sys.stderr)
    return 1 if new_findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
