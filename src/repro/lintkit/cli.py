"""Command-line interface: ``python -m repro.lintkit src tests``.

Exit status 0 when the tree is clean, 1 when findings remain, 2 on usage
errors — the contract both the tier-1 gate (``tests/test_lintkit_clean.py``)
and CI rely on.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lintkit.engine import LintStats, all_rules, lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lintkit",
        description="Repo-specific AST lint: unit-safety, RNG discipline, "
        "validation coverage (rules RP101-RP106).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule finding counts and suppression totals",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = "library only" if rule.library_only else "library + tests"
            print(f"{rule.rule_id}  {rule.summary}  [{scope}]")
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    stats = LintStats()
    try:
        findings = lint_paths(args.paths, select=select, stats=stats)
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([finding.to_dict() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
    if args.statistics:
        for rule_id in sorted(stats.per_rule):
            print(f"{rule_id}: {stats.per_rule[rule_id]} finding(s)", file=sys.stderr)
        print(
            f"checked {stats.files} file(s), "
            f"{len(findings)} finding(s), {stats.suppressed} suppressed",
            file=sys.stderr,
        )
    if args.format == "text" and findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
