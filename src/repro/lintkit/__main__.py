"""``python -m repro.lintkit`` dispatch."""

import sys

from repro.lintkit.cli import main

sys.exit(main())
