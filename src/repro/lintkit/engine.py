"""Rule registry, suppression handling and the lint driver.

A rule is a subclass of :class:`Rule` registered with the :func:`register`
decorator.  The engine parses each ``*.py`` file once, hands every rule the
same :class:`ModuleContext`, filters findings through per-line suppression
comments (``# lint: ignore[RP101]`` or ``# lint: ignore[RP101, RP105]``)
and returns the surviving findings sorted by location.

Two analysis tiers share that parse:

* **Per-file rules** (:class:`Rule`, the RP1xx family plus RP204/RP205)
  see one module at a time.  Their results depend only on that file's
  bytes, so they are cached content-addressed by :class:`AnalysisCache`.
* **Project rules** (:class:`ProjectRule`, RP201–RP203) see the whole
  tree as a :class:`~repro.lintkit.graph.ProjectGraph`.  They re-run every
  invocation — they are cheap graph walks — but the graph itself is
  rebuilt from cached :class:`~repro.lintkit.graph.ModuleSummary` records,
  so a warm run over an unchanged tree re-parses *zero* files.

:func:`analyze_paths` is the full driver (both tiers, incremental cache,
parallel parsing); :func:`lint_paths` remains the simple per-file-only
entry point.
"""

from __future__ import annotations

import ast
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.lintkit.cache import AnalysisCache, lintkit_rule_key
from repro.lintkit.findings import Finding
from repro.lintkit.graph import ModuleSummary, ProjectGraph, summarize_module
from repro.lintkit.unitcheck import infer_module
from repro.utils.sysinfo import available_cpu_count
from repro.utils.validation import check_non_negative_int

__all__ = [
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "split_select",
    "lint_source",
    "lint_paths",
    "analyze_paths",
    "LintStats",
    "PARSE_ERROR_RULE_ID",
]

#: Pseudo-rule id attached to findings for files that fail to parse.
PARSE_ERROR_RULE_ID = "RP000"

#: ``# lint: ignore[RP101]`` / ``# lint: ignore[RP101, RP106]``
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9_\-,\s]+)\]")


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str
    tree: ast.Module
    lines: Tuple[str, ...]
    is_test: bool

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0)) + 1
        return Finding(
            path=self.path, line=line, col=col, rule_id=rule_id, message=message
        )

    def path_endswith(self, *tail: str) -> bool:
        """True if the module path ends with the given components."""
        parts = Path(self.path).parts
        return parts[-len(tail):] == tail


class Rule:
    """Base class for repo-specific rules.

    Subclasses set ``rule_id`` and ``summary`` and implement :meth:`check`.
    ``library_only`` rules skip test modules (``tests/`` trees, ``test_*.py``
    and ``conftest.py``): tests deliberately re-derive conversions and build
    seeded generators as *independent oracles* for the library code, which
    is exactly what the library itself must not do.
    """

    rule_id: str = ""
    summary: str = ""
    library_only: bool = False

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on the given module (path-based scoping)."""
        return not (self.library_only and ctx.is_test)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-project rules (the graph-walking RP2xx tier).

    Unlike :class:`Rule`, a project rule sees every analyzed module at
    once as a :class:`~repro.lintkit.graph.ProjectGraph` and reports on
    *reachability* — properties no single file can witness.  Findings are
    still anchored to concrete (path, line) sites, so the same
    ``# lint: ignore[RP2xx]`` suppression mechanism applies.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, graph: ProjectGraph) -> Iterable[Finding]:
        """Yield findings over the whole project graph."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}
_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must define a rule_id")
    if rule_cls.rule_id in _REGISTRY or rule_cls.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the project registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must define a rule_id")
    if rule_cls.rule_id in _REGISTRY or rule_cls.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _PROJECT_REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def _expand_ids(
    ids: Iterable[str], registries: Sequence[Dict[str, Any]]
) -> List[str]:
    """Expand prefix selections (``RP3`` -> every registered RP3xx id).

    Exact ids pass through; an id matching no registry exactly expands to
    every registered id it prefixes (across the given registries).  Ids
    matching nothing at all pass through unchanged so the caller's
    unknown-id error reports them.
    """
    expanded: List[str] = []
    for rule_id in ids:
        if any(rule_id in registry for registry in registries):
            expanded.append(rule_id)
            continue
        matches = sorted(
            known
            for registry in registries
            for known in registry
            if known.startswith(rule_id)
        )
        if matches:
            expanded.extend(matches)
        else:
            expanded.append(rule_id)
    return expanded


def all_project_rules(
    select: Optional[Iterable[str]] = None,
) -> List[ProjectRule]:
    """Instantiate registered project rules, optionally restricted.

    Prefix ids expand (``RP2`` selects every registered RP2xx project
    rule); see :func:`split_select` for mixed-tier selections.

    Raises
    ------
    KeyError
        If ``select`` names an unknown project rule id.
    """
    if select is None:
        ids: List[str] = sorted(_PROJECT_REGISTRY)
    else:
        ids = _expand_ids(select, [_PROJECT_REGISTRY])
        unknown = [rule_id for rule_id in ids if rule_id not in _PROJECT_REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown project rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_PROJECT_REGISTRY))}"
            )
    return [_PROJECT_REGISTRY[rule_id]() for rule_id in ids]


def split_select(
    select: Optional[Iterable[str]],
) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Partition a ``--select`` list into (per-file ids, project ids).

    ``None`` passes through as ``(None, None)`` — "all of both".  With an
    explicit selection, either half may come back as an *empty list*,
    meaning "run none of that tier".  Prefix ids expand against both
    registries first, so ``--select RP3`` runs the whole RP3xx family
    (per-file RP301/RP303/RP304 plus the project-tier RP302).

    Raises
    ------
    KeyError
        If any id is unknown to both registries.
    """
    if select is None:
        return None, None
    file_ids: List[str] = []
    project_ids: List[str] = []
    unknown: List[str] = []
    for rule_id in _expand_ids(select, [_REGISTRY, _PROJECT_REGISTRY]):
        if rule_id in _REGISTRY:
            file_ids.append(rule_id)
        elif rule_id in _PROJECT_REGISTRY:
            project_ids.append(rule_id)
        else:
            unknown.append(rule_id)
    if unknown:
        known = sorted(list(_REGISTRY) + list(_PROJECT_REGISTRY))
        raise KeyError(
            f"unknown rule id(s) {', '.join(unknown)}; known: {', '.join(known)}"
        )
    return file_ids, project_ids


def all_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate registered rules, optionally restricted to ``select`` ids.

    Prefix ids expand against the per-file registry (``RP1`` selects all
    RP1xx rules).

    Raises
    ------
    KeyError
        If ``select`` names an unknown rule id.
    """
    if select is None:
        ids: List[str] = sorted(_REGISTRY)
    else:
        ids = _expand_ids(select, [_REGISTRY])
        unknown = [rule_id for rule_id in ids if rule_id not in _REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[rule_id]() for rule_id in ids]


def _suppressions(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Per-line suppressed rule ids (1-based line numbers)."""
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                table[lineno] = ids
    return table


def _is_test_path(path: Path) -> bool:
    name = path.name
    if name.startswith("test_") or name == "conftest.py":
        return True
    return "tests" in path.parts


@dataclass
class LintStats:
    """Mutable run statistics (files seen, findings suppressed).

    ``parsed``/``cached`` split ``files`` for incremental runs: a warm
    :func:`analyze_paths` pass over an unchanged tree reports
    ``parsed == 0``.  ``baselined`` counts findings swallowed by a
    ``--baseline`` file (tallied by the CLI, not the engine).
    """

    files: int = 0
    suppressed: int = 0
    per_rule: Dict[str, int] = field(default_factory=dict)
    parsed: int = 0
    cached: int = 0
    baselined: int = 0

    def __post_init__(self) -> None:
        check_non_negative_int(self.files, "files")
        check_non_negative_int(self.suppressed, "suppressed")
        check_non_negative_int(self.parsed, "parsed")
        check_non_negative_int(self.cached, "cached")
        check_non_negative_int(self.baselined, "baselined")

    def count(self, finding: Finding) -> None:
        """Tally one (unsuppressed) finding into the per-rule counters."""
        self.per_rule[finding.rule_id] = self.per_rule.get(finding.rule_id, 0) + 1


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    is_test: Optional[bool] = None,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Lint one module given as source text; the core entry point.

    ``is_test`` defaults to a path-based guess (``tests/`` trees,
    ``test_*.py``, ``conftest.py``).  Unparseable source yields a single
    ``RP000`` finding rather than raising, so one bad file cannot hide the
    findings of the rest of a run.
    """
    active = list(rules) if rules is not None else all_rules()
    if is_test is None:
        is_test = _is_test_path(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0) + 1 if exc.offset else 1,
                rule_id=PARSE_ERROR_RULE_ID,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    lines = tuple(source.splitlines())
    ctx = ModuleContext(path=path, tree=tree, lines=lines, is_test=bool(is_test))
    suppressed = _suppressions(lines)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if finding.rule_id in suppressed.get(finding.line, frozenset()):
                if stats is not None:
                    stats.suppressed += 1
                continue
            findings.append(finding)
            if stats is not None:
                stats.count(finding)
    return sorted(findings)


def _iter_python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def lint_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Lint files and directory trees; directories are walked for ``*.py``."""
    rules = all_rules(select)
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        if stats is not None:
            stats.files += 1
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, path=str(file_path), rules=rules, stats=stats)
        )
    return sorted(findings)


# --------------------------------------------------------------------- #
# Full analysis driver: per-file rules + project graph, incrementally   #
# --------------------------------------------------------------------- #


def _analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    root: Optional[str],
) -> Dict[str, Any]:
    """One file -> a JSON-able cache entry payload.

    The payload carries per-file findings, the suppressed count, and the
    :class:`ModuleSummary` the project graph is rebuilt from — everything
    a warm run needs in place of the parse.
    """
    is_test = _is_test_path(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        parse_error = Finding(
            path=path,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 0) + 1 if exc.offset else 1,
            rule_id=PARSE_ERROR_RULE_ID,
            message=f"could not parse file: {exc.msg}",
        )
        return {
            "findings": [parse_error.to_dict()],
            "suppressed": 0,
            "summary": None,
        }
    lines = tuple(source.splitlines())
    ctx = ModuleContext(path=path, tree=tree, lines=lines, is_test=is_test)
    suppressed_map = _suppressions(lines)
    findings: List[Finding] = []
    suppressed_count = 0
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if finding.rule_id in suppressed_map.get(finding.line, frozenset()):
                suppressed_count += 1
                continue
            findings.append(finding)
    summary = summarize_module(
        tree,
        path,
        is_test,
        suppressions=suppressed_map,
        root=root,
        unit_facts=infer_module(tree),
    )
    return {
        "findings": [finding.to_dict() for finding in sorted(findings)],
        "suppressed": suppressed_count,
        "summary": summary.to_dict(),
    }


#: (path, source, per-file select ids, module root) for one worker call.
_WorkItem = Tuple[str, str, Optional[List[str]], Optional[str]]


def _analyze_worker(item: _WorkItem) -> Tuple[str, Dict[str, Any]]:
    """Process-pool worker: analyze one already-read file."""
    path, source, file_ids, root = item
    import repro.lintkit  # noqa: F401  (populate registries in fresh workers)

    return path, _analyze_source(source, path, all_rules(file_ids), root)


def _finding_from_dict(data: Dict[str, Any]) -> Finding:
    return Finding(
        path=str(data["path"]),
        line=int(data["line"]),
        col=int(data["col"]),
        rule_id=str(data["rule"]),
        message=str(data["message"]),
    )


def analyze_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    stats: Optional[LintStats] = None,
    jobs: Optional[int] = None,
    cache: Optional[AnalysisCache] = None,
    incremental: bool = True,
    project: bool = True,
    root: Optional[str] = None,
) -> List[Finding]:
    """Run both analysis tiers over files/trees, incrementally and in parallel.

    Parameters
    ----------
    jobs:
        Worker processes for parsing cache-miss files (default: the
        sysinfo CPU count; values <= 1 parse serially in-process).
    cache, incremental:
        ``incremental=False`` (or ``REPRO_NO_CACHE=1``) disables the
        content-hash cache; ``cache`` overrides the default location.
    project:
        Run the graph tier (RP2xx).  Per-file results are unaffected.
    root:
        Directory that module dotted names are computed relative to
        (default: heuristic based on ``src``/``repro`` path components).
    """
    select_list = list(select) if select is not None else None
    file_ids, project_ids = split_select(select_list)
    rules = all_rules(file_ids)
    entry_cache = cache if cache is not None else AnalysisCache()
    use_cache = incremental and entry_cache.enabled
    rule_key = lintkit_rule_key(
        ",".join(sorted(select_list)) if select_list is not None else ""
    )

    payloads: Dict[str, Dict[str, Any]] = {}
    misses: List[_WorkItem] = []
    miss_keys: Dict[str, str] = {}
    for file_path in _iter_python_files(paths):
        path = str(file_path)
        if stats is not None:
            stats.files += 1
        source = file_path.read_text(encoding="utf-8")
        entry_key = AnalysisCache.entry_key(source, path, rule_key)
        cached = entry_cache.get(entry_key) if use_cache else None
        if cached is not None:
            payloads[path] = cached
            if stats is not None:
                stats.cached += 1
            continue
        misses.append((path, source, file_ids, root))
        miss_keys[path] = entry_key

    worker_count = jobs if jobs is not None else available_cpu_count()
    if worker_count > 1 and len(misses) > 1:
        with ProcessPoolExecutor(
            max_workers=min(worker_count, len(misses))
        ) as executor:
            for path, payload in executor.map(_analyze_worker, misses):
                payloads[path] = payload
    else:
        for item in misses:
            path = item[0]
            payloads[path] = _analyze_source(item[1], path, rules, root)
    for path, _, _, _ in misses:
        if stats is not None:
            stats.parsed += 1
        if use_cache:
            entry_cache.put(miss_keys[path], payloads[path])

    findings: List[Finding] = []
    for path in payloads:
        payload = payloads[path]
        for data in payload.get("findings", []):
            finding = _finding_from_dict(data)
            findings.append(finding)
            if stats is not None:
                stats.count(finding)
        if stats is not None:
            stats.suppressed += int(payload.get("suppressed", 0))

    run_project = project and (project_ids is None or bool(project_ids))
    if run_project:
        summaries = [
            ModuleSummary.from_dict(payload["summary"])
            for payload in payloads.values()
            if payload.get("summary") is not None
        ]
        graph = ProjectGraph(summaries)
        suppression_index: Dict[Tuple[str, int], FrozenSet[str]] = {}
        for summary in summaries:
            for line, ids in summary.suppressions:
                suppression_index[(summary.path, line)] = frozenset(ids)
        for project_rule in all_project_rules(project_ids):
            for finding in project_rule.check(graph):
                covered = suppression_index.get((finding.path, finding.line))
                if covered is not None and finding.rule_id in covered:
                    if stats is not None:
                        stats.suppressed += 1
                    continue
                findings.append(finding)
                if stats is not None:
                    stats.count(finding)
    return sorted(findings)
