"""Rule registry, suppression handling and the lint driver.

A rule is a subclass of :class:`Rule` registered with the :func:`register`
decorator.  The engine parses each ``*.py`` file once, hands every rule the
same :class:`ModuleContext`, filters findings through per-line suppression
comments (``# lint: ignore[RP101]`` or ``# lint: ignore[RP101, RP105]``)
and returns the surviving findings sorted by location.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Type

from repro.lintkit.findings import Finding
from repro.utils.validation import check_non_negative_int

__all__ = [
    "ModuleContext",
    "Rule",
    "register",
    "all_rules",
    "lint_source",
    "lint_paths",
    "LintStats",
    "PARSE_ERROR_RULE_ID",
]

#: Pseudo-rule id attached to findings for files that fail to parse.
PARSE_ERROR_RULE_ID = "RP000"

#: ``# lint: ignore[RP101]`` / ``# lint: ignore[RP101, RP106]``
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9_\-,\s]+)\]")


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str
    tree: ast.Module
    lines: Tuple[str, ...]
    is_test: bool

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0)) + 1
        return Finding(
            path=self.path, line=line, col=col, rule_id=rule_id, message=message
        )

    def path_endswith(self, *tail: str) -> bool:
        """True if the module path ends with the given components."""
        parts = Path(self.path).parts
        return parts[-len(tail):] == tail


class Rule:
    """Base class for repo-specific rules.

    Subclasses set ``rule_id`` and ``summary`` and implement :meth:`check`.
    ``library_only`` rules skip test modules (``tests/`` trees, ``test_*.py``
    and ``conftest.py``): tests deliberately re-derive conversions and build
    seeded generators as *independent oracles* for the library code, which
    is exactly what the library itself must not do.
    """

    rule_id: str = ""
    summary: str = ""
    library_only: bool = False

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on the given module (path-based scoping)."""
        return not (self.library_only and ctx.is_test)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must define a rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate registered rules, optionally restricted to ``select`` ids.

    Raises
    ------
    KeyError
        If ``select`` names an unknown rule id.
    """
    if select is None:
        ids: List[str] = sorted(_REGISTRY)
    else:
        ids = list(select)
        unknown = [rule_id for rule_id in ids if rule_id not in _REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[rule_id]() for rule_id in ids]


def _suppressions(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Per-line suppressed rule ids (1-based line numbers)."""
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                table[lineno] = ids
    return table


def _is_test_path(path: Path) -> bool:
    name = path.name
    if name.startswith("test_") or name == "conftest.py":
        return True
    return "tests" in path.parts


@dataclass
class LintStats:
    """Mutable run statistics (files seen, findings suppressed)."""

    files: int = 0
    suppressed: int = 0
    per_rule: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_non_negative_int(self.files, "files")
        check_non_negative_int(self.suppressed, "suppressed")

    def count(self, finding: Finding) -> None:
        """Tally one (unsuppressed) finding into the per-rule counters."""
        self.per_rule[finding.rule_id] = self.per_rule.get(finding.rule_id, 0) + 1


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    is_test: Optional[bool] = None,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Lint one module given as source text; the core entry point.

    ``is_test`` defaults to a path-based guess (``tests/`` trees,
    ``test_*.py``, ``conftest.py``).  Unparseable source yields a single
    ``RP000`` finding rather than raising, so one bad file cannot hide the
    findings of the rest of a run.
    """
    active = list(rules) if rules is not None else all_rules()
    if is_test is None:
        is_test = _is_test_path(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0) + 1 if exc.offset else 1,
                rule_id=PARSE_ERROR_RULE_ID,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    lines = tuple(source.splitlines())
    ctx = ModuleContext(path=path, tree=tree, lines=lines, is_test=bool(is_test))
    suppressed = _suppressions(lines)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if finding.rule_id in suppressed.get(finding.line, frozenset()):
                if stats is not None:
                    stats.suppressed += 1
                continue
            findings.append(finding)
            if stats is not None:
                stats.count(finding)
    return sorted(findings)


def _iter_python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def lint_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Lint files and directory trees; directories are walked for ``*.py``."""
    rules = all_rules(select)
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        if stats is not None:
            stats.files += 1
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, path=str(file_path), rules=rules, stats=stats)
        )
    return sorted(findings)
