"""repro.lintkit — AST-based repo-specific static analysis.

The library's correctness rests on conventions that plain tests cannot
enforce: every dB↔linear conversion flows through :mod:`repro.utils.units`,
every random stream through :mod:`repro.utils.rng`, every public numeric
parameter through :mod:`repro.utils.validation`.  This package checks those
conventions mechanically, on every file, using only the stdlib :mod:`ast`
module (no third-party lint dependency).

Usage::

    python -m repro.lintkit src tests          # lint the repo (exit 1 on findings)
    python -m repro.lintkit --list-rules       # describe the RP-rules

Suppress a finding on one line with a trailing comment::

    gain = 10 ** (x / 10)  # lint: ignore[RP101]

See ``docs/static_analysis.md`` for the full rule catalogue with bad/good
examples.
"""

from repro.lintkit.engine import (
    LintStats,
    ModuleContext,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from repro.lintkit.findings import Finding

# Importing the rules module populates the registry as a side effect.
from repro.lintkit import rules as _rules  # noqa: F401

__all__ = [
    "Finding",
    "LintStats",
    "ModuleContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]
