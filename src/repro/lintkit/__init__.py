"""repro.lintkit — AST-based repo-specific static analysis.

The library's correctness rests on conventions that plain tests cannot
enforce: every dB↔linear conversion flows through :mod:`repro.utils.units`,
every random stream through :mod:`repro.utils.rng`, every public numeric
parameter through :mod:`repro.utils.validation`.  This package checks those
conventions mechanically using only the stdlib :mod:`ast` module (no
third-party lint dependency), in three tiers:

- **per-file rules** (RP101–RP107, RP204, RP205, RP301/303/304) are pure
  functions of a single module's source — cacheable and parallel;
- **project rules** (RP201–RP203, RP206, RP302) walk a best-effort call
  graph (:mod:`repro.lintkit.graph`) built from per-module summaries,
  catching path properties: blocking work reachable inside
  ``repro.service`` async defs, unawaited coroutines, nondeterminism
  reachable from cached ``/v1/*`` handlers, and awaits interleaving
  shared-state read-modify-writes;
- **unit rules** (RP301–RP304, :mod:`repro.lintkit.unitrules`) run a
  flow-sensitive physical-units inference (:mod:`repro.lintkit.unitcheck`)
  over every module, seeded from ``Annotated`` unit aliases, the
  ``units.*`` converter signatures and the ``_w/_db/_dbm`` suffix
  convention, and flag dimensionally meaningless arithmetic
  (``snr_db * noise_w``), redundant or wrong conversions, and call
  arguments contradicting annotated parameters.  Select the whole tier
  with ``--select RP3``.

Warm runs are incremental: per-file results (including the summaries the
graph is rebuilt from) are content-hash cached, so an unchanged tree
re-parses nothing.  Findings can be ratcheted with a committed baseline
and exported as SARIF for code-scanning UIs.

Usage::

    python -m repro.lintkit src tests benchmarks scripts \\
        --baseline lint-baseline.json          # the CI gate (exit 1 on new findings)
    python -m repro.lintkit --list-rules       # describe the RP-rules
    python -m repro.lintkit src --format sarif --output lint.sarif

Suppress a finding on one line with a trailing comment::

    gain = 10 ** (x / 10)  # lint: ignore[RP101]

See ``docs/static_analysis.md`` for the full rule catalogue with bad/good
examples, the project-graph architecture and the baseline workflow.
"""

from repro.lintkit.baseline import Baseline, load_baseline, write_baseline
from repro.lintkit.cache import AnalysisCache
from repro.lintkit.engine import (
    LintStats,
    ModuleContext,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    analyze_paths,
    lint_paths,
    lint_source,
    register,
    register_project,
)
from repro.lintkit.findings import Finding
from repro.lintkit.graph import ModuleSummary, ProjectGraph, summarize_module

# Importing the rule modules populates the registries as a side effect.
from repro.lintkit import rules as _rules  # noqa: F401
from repro.lintkit import projectrules as _projectrules  # noqa: F401
from repro.lintkit import unitrules as _unitrules  # noqa: F401

__all__ = [
    "AnalysisCache",
    "Baseline",
    "Finding",
    "LintStats",
    "ModuleContext",
    "ModuleSummary",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "analyze_paths",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "register_project",
    "summarize_module",
    "write_baseline",
]
