"""The RP2xx *project* rule family: dataflow over the call graph.

Where the RP1xx rules police one file, these rules walk
:class:`repro.lintkit.graph.ProjectGraph` reachability, because the
invariants they guard are properties of *paths*, not lines:

========  ==============================================================
RP201     blocking call reachable inside an ``async def`` in
          ``repro.service`` without pool/executor offload
RP202     unawaited coroutine / fire-and-forget task without a reference
RP203     determinism taint: wall clock, ``os.urandom`` or unseeded RNG
          reachable from a cached ``/v1/*`` handler
RP204     non-2xx response built without ``schemas.error_payload``
RP205     resource acquired without a context manager or close evidence
RP206     ``self.<attr>`` read-modify-write spanning an ``await`` in a
          ``repro.service`` coroutine (task-interleaving race)
========  ==============================================================

RP201–RP203 and RP206 are graph rules (:class:`ProjectRule`): they run once per
analysis over the whole summary set.  RP204/RP205 are per-file rules in
the same family — they need no cross-module context, which keeps them
eligible for the incremental per-file cache.

Everything here is best-effort by design: an unresolvable callee produces
no edge and therefore no finding.  The rules err toward silence, and every
deliberate exception in the tree carries a ``# lint: ignore[RP2xx]`` with
its justification (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lintkit.engine import (
    ModuleContext,
    ProjectRule,
    Rule,
    register,
    register_project,
)
from repro.lintkit.findings import Finding
from repro.lintkit.graph import (
    CallSite,
    FuncKey,
    FunctionInfo,
    ProjectGraph,
    dotted_name,
)
from repro.lintkit.rules import _NONDETERMINISTIC_CALLS

__all__ = [
    "AsyncBlockingRule",
    "UnawaitedCoroutineRule",
    "DeterminismTaintRule",
    "ErrorPayloadRule",
    "ResourceHygieneRule",
    "AwaitInterleavingRule",
]


def _is_service_module(module: str) -> bool:
    return module == "repro.service" or module.startswith("repro.service.")


# --------------------------------------------------------------------- #
# RP201 — blocking calls reachable inside service async defs            #
# --------------------------------------------------------------------- #

#: Direct kernel entry points: a root-finding solve takes milliseconds —
#: three orders of magnitude over the event-loop budget per callback.
_KERNEL_SOLVE_MODULE = "repro.energy.ebar"
_KERNEL_SOLVE_NAMES = frozenset({"solve_ebar", "solve_ebar_batch"})


def _blocking_primitive(site: CallSite) -> Optional[str]:
    """A human-readable description when the call itself blocks."""
    dotted = site.callee
    parts = dotted.split(".")
    terminal = parts[-1]
    if dotted == "open":
        return "file I/O via open()"
    if dotted in ("socket.socket", "socket.create_connection"):
        return f"socket construction via {dotted}()"
    if parts[0] == "subprocess":
        return f"subprocess call {dotted}()"
    if dotted == "time.sleep":
        return "time.sleep()"
    if terminal == "load" and parts[0] in ("np", "numpy"):
        if "mmap_mode" not in site.keywords:
            return "un-memmapped np.load()"
        return None
    if terminal in _KERNEL_SOLVE_NAMES:
        return f"direct kernel solve {terminal}()"
    return None


def _is_kernel_solve(key: FuncKey) -> bool:
    return key[0] == _KERNEL_SOLVE_MODULE and key[1].startswith("solve_")


#: ``may_block[f] = (description, via)`` — ``via`` is the callee through
#: which the blocking primitive is reached (None when f contains it).
_MayBlock = Dict[FuncKey, Tuple[str, Optional[FuncKey]]]


def _compute_may_block(graph: ProjectGraph) -> _MayBlock:
    """Fixpoint: which functions can block when run on the event loop.

    Propagation follows *inline* edges only — offloaded and deferred
    callables run elsewhere.  An async callee propagates only when awaited
    (an un-awaited coroutine never runs), and an async def inside
    ``repro.service`` is a barrier: its own blocking is reported at its
    own call sites, not re-reported in every caller.
    """
    may: _MayBlock = {}
    for module, fn in graph.functions():
        key = (module, fn.qualname)
        if _is_kernel_solve(key):
            may[key] = (f"direct kernel solve {fn.name}()", None)
    changed = True
    while changed:
        changed = False
        for module, fn in graph.functions():
            key = (module, fn.qualname)
            if key in may:
                continue
            for site in fn.calls:
                if site.offloaded or site.deferred:
                    continue
                primitive = _blocking_primitive(site)
                if primitive is not None:
                    may[key] = (primitive, None)
                    changed = True
                    break
                target = graph.resolve(module, fn, site.callee)
                if target is None or target not in may:
                    continue
                target_fn = graph.function(target)
                if target_fn is None:
                    continue
                if target_fn.is_async and not site.awaited:
                    continue
                if target_fn.is_async and _is_service_module(target[0]):
                    continue  # barrier: reported inside that handler
                may[key] = (may[target][0], target)
                changed = True
                break
    return may


def _blocking_chain(may: _MayBlock, start: FuncKey, limit: int = 8) -> str:
    names: List[str] = []
    cursor: Optional[FuncKey] = start
    description = ""
    while cursor is not None and len(names) < limit:
        names.append(cursor[1])
        description, cursor = may[cursor]
    return " -> ".join(names + [description])


@register_project
class AsyncBlockingRule(ProjectRule):
    """RP201: the event loop must never run file/socket I/O or a solve.

    A single blocked callback stalls *every* connection on the shard; at
    the "millions of users" request rates the serving stack targets, one
    ``np.load`` on the loop is a fleet-wide latency spike.  Heavy work
    belongs in the worker pool (``pool.submit``) or an executor
    (``loop.run_in_executor``) — both of which this rule recognizes and
    exempts.
    """

    rule_id = "RP201"
    summary = "blocking call reachable inside a repro.service async def"

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        may = _compute_may_block(graph)
        for module, fn in graph.functions():
            if not _is_service_module(module) or not fn.is_async:
                continue
            summary = graph.summary(module)
            if summary is None or summary.is_test:
                continue
            seen: Set[Tuple[int, int]] = set()
            for site in fn.calls:
                if site.offloaded or site.deferred:
                    continue
                location = (site.line, site.col)
                if location in seen:
                    continue
                primitive = _blocking_primitive(site)
                if primitive is not None:
                    seen.add(location)
                    yield Finding(
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        rule_id=self.rule_id,
                        message=(
                            f"blocking {primitive} inside async def {fn.name}; "
                            "offload via the worker pool or run_in_executor"
                        ),
                    )
                    continue
                target = graph.resolve(module, fn, site.callee)
                if target is None or target not in may:
                    continue
                target_fn = graph.function(target)
                if target_fn is None:
                    continue
                if target_fn.is_async and (
                    not site.awaited or _is_service_module(target[0])
                ):
                    continue
                seen.add(location)
                yield Finding(
                    path=summary.path,
                    line=site.line,
                    col=site.col,
                    rule_id=self.rule_id,
                    message=(
                        f"call to {site.callee} inside async def {fn.name} "
                        f"reaches blocking {_blocking_chain(may, target)}; "
                        "offload via the worker pool or run_in_executor"
                    ),
                )


# --------------------------------------------------------------------- #
# RP202 — unawaited coroutines and fire-and-forget tasks                #
# --------------------------------------------------------------------- #

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})


@register_project
class UnawaitedCoroutineRule(ProjectRule):
    """RP202: a coroutine nobody awaits silently does nothing.

    ``service.handle(...)`` without ``await`` is a no-op that *looks* like
    a request being served; ``asyncio.create_task(...)`` whose handle is
    dropped can be garbage-collected mid-flight and swallows exceptions.
    Both bugs pass every type check and most tests — exactly the class of
    defect static reachability is for.
    """

    rule_id = "RP202"
    summary = "unawaited coroutine or fire-and-forget task"

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for module, fn in graph.functions():
            summary = graph.summary(module)
            if summary is None or summary.is_test:
                continue
            for site in fn.calls:
                if not site.stmt_expr or site.awaited:
                    continue
                terminal = site.callee.split(".")[-1]
                if terminal in _TASK_SPAWNERS:
                    yield Finding(
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        rule_id=self.rule_id,
                        message=(
                            f"{site.callee}(...) result is dropped; keep the "
                            "task reference and await or cancel it, or the "
                            "task can be garbage-collected mid-flight"
                        ),
                    )
                    continue
                target = graph.resolve(module, fn, site.callee)
                if target is None:
                    continue
                target_fn = graph.function(target)
                if target_fn is not None and target_fn.is_async:
                    yield Finding(
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        rule_id=self.rule_id,
                        message=(
                            f"coroutine {site.callee}(...) is never awaited; "
                            "the call creates a coroutine object and discards "
                            "it without running the body"
                        ),
                    )


# --------------------------------------------------------------------- #
# RP203 — determinism taint reachable from cached handlers              #
# --------------------------------------------------------------------- #

_UNSEEDED_RNG_NAMES = frozenset({"as_rng", "default_rng"})


def _taint_primitive(site: CallSite) -> Optional[str]:
    dotted = site.callee
    if dotted in _NONDETERMINISTIC_CALLS:
        return f"nondeterministic {dotted}()"
    terminal = dotted.split(".")[-1]
    if terminal in _UNSEEDED_RNG_NAMES and site.first_arg_none:
        return f"unseeded RNG via {dotted}(None)"
    return None


@register_project
class DeterminismTaintRule(ProjectRule):
    """RP203: nothing nondeterministic may feed a cacheable response.

    The persistent result cache (PR 6) replays any ``/v1/*`` POST response
    byte-identically, forever.  A wall-clock read or an unseeded generator
    anywhere in the handler's reach — including work offloaded to the pool,
    whose results come back into the payload — would be frozen into the
    cache on first computation and silently served stale ever after.  This
    is the RP103 per-file ban made transitive and cache-aware: roots are
    the ``_handle_*`` / ``_dispatch_post`` handler methods whose payloads
    the cache stores.
    """

    rule_id = "RP203"
    summary = "nondeterminism reachable from a cached /v1 handler"

    @staticmethod
    def _roots(graph: ProjectGraph) -> List[FuncKey]:
        roots: List[FuncKey] = []
        for module, fn in graph.functions():
            if not _is_service_module(module) or not fn.is_async:
                continue
            if fn.name.startswith("_handle_") or fn.name == "_dispatch_post":
                roots.append((module, fn.qualname))
        return roots

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        parents = graph.reachable(
            self._roots(graph), include_offloaded=True, include_deferred=True
        )
        for key in sorted(parents):
            fn = graph.function(key)
            summary = graph.summary(key[0])
            if fn is None or summary is None or summary.is_test:
                continue
            for site in fn.calls:
                taint = _taint_primitive(site)
                if taint is None:
                    continue
                chain = " -> ".join(ProjectGraph.chain(parents, key))
                yield Finding(
                    path=summary.path,
                    line=site.line,
                    col=site.col,
                    rule_id=self.rule_id,
                    message=(
                        f"{taint} reachable from a cached handler "
                        f"(via {chain}); the persistent result cache would "
                        "replay this value forever — thread an explicit seed "
                        "instead"
                    ),
                )


# --------------------------------------------------------------------- #
# RP204 — error responses must flow through schemas.error_payload       #
# --------------------------------------------------------------------- #


def _in_service_path(path: str) -> bool:
    parts = Path(path).parts
    return (
        "repro" in parts
        and "service" in parts
        and parts.index("service") == parts.index("repro") + 1
    )


def _is_error_status(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
        and node.value >= 400
    )


def _is_error_payload_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func).split(".")[-1] == "error_payload"
    )


@register
class ErrorPayloadRule(Rule):
    """RP204: one audited error-body shape, everywhere.

    Clients (and the retry/circuit-breaker machinery) parse error bodies;
    a handler that hand-rolls ``{"error": ...}`` drifts from the
    ``schemas.error_payload`` contract the moment either side changes.
    Flags ``(status >= 400, payload)`` pairs and ``render_response(status,
    {...})`` calls whose payload is not an ``error_payload(...)`` call.
    ``schemas.py`` itself (the one sanctioned constructor) is exempt.
    """

    rule_id = "RP204"
    summary = "non-2xx response built without schemas.error_payload"
    library_only = True

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not _in_service_path(ctx.path) or ctx.path_endswith(
            "service", "schemas.py"
        ):
            return False
        return super().applies_to(ctx)

    def _payload_violation(self, payload: ast.AST) -> bool:
        """Payload expressions that build a body inline, bypassing schemas."""
        return isinstance(payload, (ast.Dict, ast.DictComp)) or (
            isinstance(payload, ast.Call) and not _is_error_payload_call(payload)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Tuple)
                and len(node.elts) == 2
                and _is_error_status(node.elts[0])
                and self._payload_violation(node.elts[1])
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "non-2xx (status, payload) built inline; construct the "
                    "body with schemas.error_payload(status, reason, detail)",
                )
            elif (
                isinstance(node, ast.Call)
                and dotted_name(node.func).split(".")[-1] == "render_response"
                and len(node.args) >= 2
                and (
                    _is_error_status(node.args[0])
                    or (
                        isinstance(node.args[0], ast.Attribute)
                        and node.args[0].attr == "status"
                    )
                )
                and self._payload_violation(node.args[1])
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "error response rendered from an inline payload; "
                    "construct the body with schemas.error_payload",
                )


# --------------------------------------------------------------------- #
# RP205 — resource hygiene                                              #
# --------------------------------------------------------------------- #

#: Calls that acquire an OS-level resource the caller must release.
_ACQUIRE_DOTTED = frozenset(
    {"socket.socket", "socket.create_connection", "os.fdopen"}
)
_ACQUIRE_TERMINAL = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor"})
_RELEASE_ATTRS = frozenset({"close", "shutdown", "release", "terminate"})


def _is_acquisition(node: ast.Call) -> bool:
    dotted = dotted_name(node.func)
    if not dotted:
        return False
    return (
        dotted == "open"
        or dotted in _ACQUIRE_DOTTED
        or dotted.split(".")[-1] in _ACQUIRE_TERMINAL
    )


@register
class ResourceHygieneRule(Rule):
    """RP205: every acquired socket/file/executor needs a release story.

    Leaked sockets exhaust file descriptors precisely under the load the
    sharded server exists to absorb; a leaked executor leaks *processes*.
    An acquisition is accepted when it is used as a context manager,
    stored on ``self`` (owned by an object with a lifecycle), passed to
    another call (ownership transfer, e.g. ``start_server(sock=sock)``),
    returned to the caller, or a ``.close()``/``.shutdown()`` on the bound
    name is visible in the same function.  Everything else is a leak
    until proven otherwise.
    """

    rule_id = "RP205"
    summary = "resource acquired without context manager or close evidence"
    library_only = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_acquisition(node):
                if not self._is_released(node, parents):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{dotted_name(node.func)}(...) acquired without a "
                        "with-block, ownership transfer or visible close; "
                        "wrap it in a context manager or close on all paths",
                    )

    # -- acceptance paths ---------------------------------------------- #

    def _is_released(
        self, node: ast.Call, parents: Dict[int, ast.AST]
    ) -> bool:
        parent = parents.get(id(node))
        # with open(...) as f:   /   async with ...
        cursor: Optional[ast.AST] = node
        while cursor is not None:
            up = parents.get(id(cursor))
            if isinstance(up, ast.withitem):
                return True
            if isinstance(up, (ast.stmt, ast.Module)):
                break
            cursor = up
        # start_server(socket.socket(...)) — ownership transfer
        if isinstance(parent, (ast.Call, ast.keyword, ast.Return)):
            return True
        # self.x = acquisition — object lifecycle owns it
        if isinstance(parent, ast.Assign):
            names = [t for t in parent.targets if isinstance(t, ast.Name)]
            if any(isinstance(t, ast.Attribute) for t in parent.targets):
                return True
            if names:
                scope = self._enclosing_scope(parent, parents)
                return self._name_released(names[0].id, scope)
        if isinstance(parent, ast.AnnAssign):
            if isinstance(parent.target, ast.Attribute):
                return True
            if isinstance(parent.target, ast.Name):
                scope = self._enclosing_scope(parent, parents)
                return self._name_released(parent.target.id, scope)
        return False

    @staticmethod
    def _enclosing_scope(
        node: ast.AST, parents: Dict[int, ast.AST]
    ) -> ast.AST:
        cursor: Optional[ast.AST] = node
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                return cursor
            cursor = parents.get(id(cursor))
        return node

    @staticmethod
    def _name_released(name: str, scope: ast.AST) -> bool:
        """Evidence that the local ``name`` is closed or handed off."""
        for node in ast.walk(scope):
            # name.close() / name.shutdown(...)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and node.func.attr in _RELEASE_ATTRS
            ):
                return True
            # some_call(name) / some_call(sock=name): ownership transfer
            if isinstance(node, ast.Call):
                operands = list(node.args) + [
                    kw.value for kw in node.keywords
                ]
                if any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in operands
                ):
                    return True
            # with name:  — context manager on the bound name
            if isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
            # return name / yield name — caller takes ownership
            if isinstance(node, (ast.Return, ast.Yield)) and (
                isinstance(node.value, ast.Name) and node.value.id == name
            ):
                return True
            # self.x = name — stored for the object lifecycle
            if isinstance(node, ast.Assign) and (
                isinstance(node.value, ast.Name) and node.value.id == name
            ):
                if any(
                    isinstance(t, ast.Attribute) for t in node.targets
                ):
                    return True
        return False


# --------------------------------------------------------------------- #
# RP206 — read-modify-write of shared state across an await             #
# --------------------------------------------------------------------- #


@register_project
class AwaitInterleavingRule(ProjectRule):
    """RP206: ``self.x`` read, then ``await``, then ``self.x`` written.

    asyncio is single-threaded but not atomic: every ``await`` is a
    scheduling point where another task may run the same handler and
    mutate the same object.  A counter bumped as ``read -> await ->
    write`` loses increments under concurrency even though the code has
    no threads — the classic check-then-act race, in coroutine clothing.
    The fix is to re-read after the await, mutate before it, or guard
    the critical section with an ``asyncio.Lock``.
    """

    rule_id = "RP206"
    summary = "self attribute read-modify-write spans an await point"

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for module, fn in graph.functions():
            if not _is_service_module(module) or not fn.is_async:
                continue
            if fn.cls is None or not fn.attr_writes:
                continue
            summary = graph.summary(module)
            if summary is None or summary.is_test:
                continue
            await_lines = sorted(
                site.line for site in fn.calls if site.awaited
            )
            if not await_lines:
                continue
            yield from self._hazards(summary.path, fn, await_lines)

    def _hazards(
        self, path: str, fn: "FunctionInfo", await_lines: List[int]
    ) -> Iterator[Finding]:
        reads: Dict[str, List[int]] = {}
        for attr, line in fn.attr_reads:
            reads.setdefault(attr, []).append(line)
        reported: Set[str] = set()
        for attr, write_line in sorted(fn.attr_writes, key=lambda p: p[1]):
            if attr in reported or attr not in reads:
                continue
            for read_line in sorted(reads[attr]):
                if read_line > write_line:
                    break
                awaits_between = [
                    line
                    for line in await_lines
                    if read_line <= line <= write_line
                ]
                if awaits_between:
                    reported.add(attr)
                    yield Finding(
                        path=path,
                        line=write_line,
                        col=1,
                        rule_id=self.rule_id,
                        message=(
                            f"self.{attr} is read on line {read_line} and "
                            f"written on line {write_line} with an await on "
                            f"line {awaits_between[0]} in between; another "
                            f"task can interleave in async def {fn.name} — "
                            "re-read after the await or hold an asyncio.Lock"
                        ),
                    )
                    break
