"""Figure 7 — total PA energy per bit of all SUs in underlay hops.

Protocol (Section 6.2): target BER p = 0.001, intra-cluster range d = 1 m,
long-haul distance D in 100..300 m, cooperative configurations
(mt, mr) = (1,1) [the non-cooperative SISO / primary-user reference],
(2,1), (1,2), (1,3), (2,3), (3,1); constellation size optimized per point.

The d-sweep extension (Section 6.2 text: "the value of d doesn't give any
big impact") is included as extra rows at d = 4 and 16 m.
"""

from __future__ import annotations

import numpy as np

from repro.core.underlay import UnderlaySystem
from repro.energy.model import EnergyModel
from repro.experiments.registry import ExperimentResult

__all__ = ["run", "check"]

CONFIGS = ((1, 1), (2, 1), (1, 2), (1, 3), (2, 3), (3, 1))
DISTANCES = (100.0, 150.0, 200.0, 250.0, 300.0)
D_LOCAL_VALUES = (1.0, 4.0, 16.0)
TARGET_BER = 0.001
BANDWIDTH = 10e3


def _cell_rows(task):
    """Rows of one independent (d, mt, mr) cell — the parallel work unit.

    Module-level (hence picklable) and a pure function of its arguments, so
    running cells serially or across worker processes yields bit-identical
    rows.  The distance axis inside the cell is swept vectorized.
    """
    d, mt, mr, distances = task
    system = UnderlaySystem(EnergyModel())
    results = system.pa_energy_sweep(TARGET_BER, mt, mr, d, distances, BANDWIDTH)
    siso = system.pa_energy_sweep(TARGET_BER, 1, 1, d, distances, BANDWIDTH)
    return [
        (
            d,
            mt,
            mr,
            res.distance,
            res.b,
            res.total_pa,
            res.peak_pa,
            ref.total_pa / res.total_pa,
        )
        for res, ref in zip(results, siso)
    ]


def run(seed: int = 0, fast: bool = False, jobs: int = 1) -> ExperimentResult:
    """Regenerate the Figure 7 series plus the d-sweep (deterministic).

    ``jobs > 1`` fans the independent (d, mt, mr) cells over worker
    processes; the rows are bit-identical to the serial run.
    """
    distances = DISTANCES[::2] if fast else DISTANCES
    d_values = D_LOCAL_VALUES[:1] if fast else D_LOCAL_VALUES
    tasks = [(d, mt, mr, distances) for d in d_values for (mt, mr) in CONFIGS]
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            chunks = list(pool.map(_cell_rows, tasks))
    else:
        chunks = [_cell_rows(task) for task in tasks]
    rows = [row for chunk in chunks for row in chunk]
    return ExperimentResult(
        experiment_id="fig7",
        title="Underlay: total PA energy per bit of all SU nodes",
        columns=(
            "d",
            "mt",
            "mr",
            "D",
            "b",
            "total_pa_j_per_bit",
            "peak_pa_j_per_bit",
            "siso_margin",
        ),
        rows=rows,
        paper_values={
            "siso_gap": "SISO needs 2-4 orders of magnitude more than cooperative",
            "cheapest": "mt<mr configurations overlap near zero; mt>mr cost more",
            "d_sweep": "d in 1..16 m gives no big impact",
        },
        notes=(
            "siso_margin is total_pa(1,1)/total_pa(mt,mr) at the same point — "
            "the paper's operational 'below the noise floor' criterion."
        ),
    )


def check(result: ExperimentResult) -> None:
    """Shape assertions for Figure 7."""
    d_values = sorted(set(result.column("d")))
    base_d = d_values[0]

    for dist in sorted(set(result.column("D"))):
        at = {
            (mt, mr): row
            for (mt, mr) in CONFIGS
            for row in result.select(d=base_d, mt=mt, mr=mr, D=dist)
        }
        siso = at[(1, 1)][5]
        # SISO dominates every cooperative configuration, by a large factor
        # (the weakest, 2x1, clears ~10x; richer configurations 20-100x)
        for cfg in CONFIGS[1:]:
            coop = at[cfg][5]
            assert coop < siso, f"{cfg} not below SISO at D={dist}"
            assert siso / coop > 5.0, (
                f"SISO margin {siso / coop:.1f}x < 5x for {cfg} at D={dist}"
            )
        # the 2x3 configuration reaches the "2 orders" regime
        assert siso / at[(2, 3)][5] > 50.0, "2x3 margin below ~2 orders"
        # mt < mr beats the swapped configuration (transmission costs more
        # than reception, Section 6.2)
        assert at[(1, 2)][5] < at[(2, 1)][5], f"(1,2) not cheaper than (2,1) at D={dist}"
        assert at[(1, 3)][5] < at[(3, 1)][5], f"(1,3) not cheaper than (3,1) at D={dist}"
        # energy grows with link distance
    for (mt, mr) in CONFIGS:
        series = [row[5] for row in result.select(d=base_d, mt=mt, mr=mr)]
        assert all(np.diff(series) > 0), f"total PA not increasing in D for {mt}x{mr}"

    # d-sweep: intra-cluster range has no big impact (when present)
    if len(d_values) > 1:
        for (mt, mr) in CONFIGS:
            for dist in sorted(set(result.column("D"))):
                vals = [
                    result.select(d=d, mt=mt, mr=mr, D=dist)[0][5] for d in d_values
                ]
                spread = max(vals) / min(vals)
                assert spread < 1.5, (
                    f"d-sweep impact {spread:.2f}x too large for {mt}x{mr} at D={dist}"
                )
