"""Table 1 — received amplitude of the null-steered pair at Sr.

Protocol (Section 6.3): St1 and St2 are 15 m apart on the vertical axis
(r = w/2, i.e. simulation wavelength 30 m), the horizontal axis bisects
them; per trial 20 candidate primary receivers are drawn uniformly in a
circle of radius 150 m centered at St1; the pair picks one (the Table 1
picks all lie near the vertical axis), steers its null there, and the
average received amplitude over the secondary receive cluster is compared
with a SISO transmission.  10 trials.

The exact-delay ablation (position-aware ``delta``) is reported alongside:
it drives the residual at Pr to machine zero, quantifying the far-field
approximation error of Algorithm 3's closed-form ``delta``.
"""

from __future__ import annotations

import numpy as np

from repro.core.interweave import InterweaveSystem
from repro.experiments.registry import ExperimentResult

__all__ = ["run", "check"]

ST1 = (0.0, 7.5)
ST2 = (0.0, -7.5)
N_TRIALS = 10


def run(seed: int = 2013, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 1 (plus the exact-delay ablation columns)."""
    n_trials = 3 if fast else N_TRIALS
    system = InterweaveSystem(st1=ST1, st2=ST2)
    trials = system.run_table1(n_trials=n_trials, rng=seed)
    trials_exact = system.run_table1(n_trials=n_trials, rng=seed, exact_delay=True)
    rows = []
    for i, (t, te) in enumerate(zip(trials, trials_exact), start=1):
        rows.append(
            (
                i,
                round(t.picked_pr[0], 1),
                round(t.picked_pr[1], 1),
                t.amplitude_at_sr,
                t.gain_over_siso,
                t.residual_at_pr,
                te.residual_at_pr,
            )
        )
    mean_gain = float(np.mean([t.gain_over_siso for t in trials]))
    return ExperimentResult(
        experiment_id="table1",
        title="Interweave: amplitude at Sr from two null-steered SUs (10 trials)",
        columns=(
            "test",
            "pr_x",
            "pr_y",
            "amplitude",
            "gain_over_siso",
            "residual_at_pr",
            "residual_exact_delta",
        ),
        rows=rows,
        metadata={"mean_gain": mean_gain},
        paper_values={
            "amplitudes": [1.87, 1.87, 1.88, 1.87, 1.87, 1.87, 1.88, 1.89, 1.87, 1.87],
            "mean": 1.87,
            "picked_pr": "all near the St1-St2 axis, e.g. (0,-71), (6,121), (-25,-149)",
        },
        notes=(
            "gain_over_siso ~ 1.9-2.0 vs the paper's 1.87: near-full 2x "
            "transmit diversity while the primary receiver sits in the null.  "
            "residual_at_pr uses Algorithm 3's far-field delta; the exact "
            "column shows a position-aware delta removes even that leakage."
        ),
    )


def check(result: ExperimentResult) -> None:
    """Shape assertions for Table 1."""
    gains = result.column("gain_over_siso")
    residuals = result.column("residual_at_pr")
    residuals_exact = result.column("residual_exact_delta")
    pr_x = result.column("pr_x")
    pr_y = result.column("pr_y")

    mean_gain = float(np.mean(gains))
    assert 1.7 <= mean_gain <= 2.0, f"mean diversity gain {mean_gain:.3f} outside [1.7, 2]"
    assert min(gains) > 1.5, f"a trial fell to gain {min(gains):.3f}"

    # interference at the primary receiver is far below the SISO amplitude (1.0)
    assert max(residuals) < 0.1, f"far-field delta leaks {max(residuals):.3f} at Pr"
    assert max(residuals_exact) < 1e-9, "exact delta should null Pr to machine zero"

    # the picked primary receivers hug the pair's baseline axis (as in the
    # paper's Table 1 locations)
    for x, y in zip(pr_x, pr_y):
        assert abs(y) > abs(x), f"picked Pr ({x}, {y}) not aligned with the pair axis"
