"""Table 3 — multi-relay overlay BER (two labs + corridor testbed).

Protocol (Section 6.4): transmitter and receiver in two labs more than
30 feet apart through multiple concrete walls; three relays uniformly
placed in the corridor (the single-relay baseline keeps one relay at the
midpoint); BPSK, 100 000 bits, equal-gain combination; averages over three
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.testbed.environment import table3_testbed

__all__ = ["run", "check"]

N_BITS = 100_000
N_EXPERIMENTS = 3

#: Paper Table 3 (averages): multi-relay, single-relay, no cooperation.
PAPER = {"multi": 0.0293, "single": 0.1057, "direct": 0.2274}


def run(seed: int = 7, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 3 (averages over three experiments)."""
    n_bits = N_BITS // 10 if fast else N_BITS
    testbed = table3_testbed()
    multi, single, direct = [], [], []
    for trial in range(N_EXPERIMENTS):
        base = seed + 10 * trial
        multi.append(
            testbed.run_relay_experiment(
                "tx", ["relay1", "relay2", "relay3"], "rx", n_bits=n_bits, rng=base
            ).ber
        )
        single.append(
            testbed.run_relay_experiment(
                "tx", ["relay_mid"], "rx", n_bits=n_bits, rng=base + 1
            ).ber
        )
        direct.append(
            testbed.run_relay_experiment(
                "tx", [], "rx", n_bits=n_bits, rng=base + 2
            ).ber
        )
    rows = [
        (
            "average BER",
            float(np.mean(multi)),
            float(np.mean(single)),
            float(np.mean(direct)),
        )
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="Multi-relay overlay BER (multi vs single vs no cooperation)",
        columns=("metric", "multi_relay", "single_relay", "without_cooperation"),
        rows=rows,
        paper_values=PAPER,
        notes=(
            "Paper: 2.93% / 10.57% / 22.74%.  'The more relays, the lower "
            "bit errors' is the reproduced ordering."
        ),
    )


def check(result: ExperimentResult) -> None:
    """Shape assertions for Table 3."""
    _, multi, single, direct = result.rows[0]
    # strict ordering: more relays -> fewer errors
    assert multi < single < direct, (
        f"ordering violated: multi={multi:.4f} single={single:.4f} direct={direct:.4f}"
    )
    # rough factors of the paper: direct/single ~2.2x, single/multi ~3.6x
    assert direct / single > 1.5, f"direct/single {direct / single:.2f} too small"
    assert single / multi > 1.8, f"single/multi {single / multi:.2f} too small"
    # regimes: direct is in the tens of percent, multi in the low percent
    assert direct > 0.12, f"direct BER {direct:.3f} too good for the obstructed link"
    assert multi < 0.08, f"multi-relay BER {multi:.3f} not in the low-percent regime"
