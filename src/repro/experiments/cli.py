"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    repro-experiments list
    repro-experiments run fig6 [--fast] [--seed N] [--no-check] [--jobs N]
    repro-experiments all [--fast] [--jobs N]

Every run prints the regenerated table and, unless ``--no-check`` is
given, executes the experiment's shape assertions against the paper.

``--jobs N`` parallelizes over worker processes: ``run`` forwards it to
experiments that fan their internal grid cells out (fig6, fig7), while
``all``/``report`` fan whole experiments.  Results are bit-identical to
the serial run either way.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import (
    EXPERIMENTS,
    _accepted_kwargs,
    check_experiment,
    run_experiment,
    run_experiments,
)

__all__ = ["main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the cooperative "
        "MIMO cognitive-radio paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_p.add_argument("--seed", type=int, default=None, help="override the seed")
    run_p.add_argument("--fast", action="store_true", help="shrink Monte-Carlo sizes")
    run_p.add_argument("--no-check", action="store_true", help="skip shape assertions")
    run_p.add_argument("--json", metavar="PATH", help="also write the result as JSON")
    run_p.add_argument("--csv", metavar="PATH", help="also write the rows as CSV")
    run_p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for experiments that parallelize internally",
    )

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--fast", action="store_true", help="shrink Monte-Carlo sizes")
    all_p.add_argument("--no-check", action="store_true", help="skip shape assertions")
    all_p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes to fan experiments over",
    )

    report_p = sub.add_parser(
        "report", help="run everything and write one markdown report"
    )
    report_p.add_argument("output", help="markdown file to write")
    report_p.add_argument("--fast", action="store_true", help="shrink Monte-Carlo sizes")
    report_p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes to fan experiments over",
    )
    return parser


def _run_one(
    experiment_id: str,
    seed: Optional[int],
    fast: bool,
    no_check: bool,
    json_path: Optional[str] = None,
    csv_path: Optional[str] = None,
    jobs: int = 1,
) -> bool:
    kwargs = {"fast": fast}
    if seed is not None:
        kwargs["seed"] = seed
    if jobs > 1:
        kwargs["jobs"] = jobs
    result = run_experiment(experiment_id, **_accepted_kwargs(experiment_id, kwargs))
    print(result.to_text())
    print()
    if json_path:
        import json

        with open(json_path, "w") as handle:
            json.dump(result.to_json_dict(), handle, indent=2)
        print(f"[{experiment_id}] wrote {json_path}")
    if csv_path:
        with open(csv_path, "w") as handle:
            handle.write(result.to_csv())
        print(f"[{experiment_id}] wrote {csv_path}")
    if no_check:
        return True
    try:
        check_experiment(result)
    except AssertionError as exc:
        print(f"[{experiment_id}] SHAPE CHECK FAILED: {exc}", file=sys.stderr)
        return False
    print(f"[{experiment_id}] shape checks passed")
    return True


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name, module in sorted(EXPERIMENTS.items()):
            print(f"{name:8s} {module}")
        return 0
    if args.command == "run":
        ok = _run_one(
            args.experiment,
            args.seed,
            args.fast,
            args.no_check,
            json_path=args.json,
            csv_path=args.csv,
            jobs=args.jobs,
        )
        return 0 if ok else 1
    if args.command == "report":
        return _write_report(args.output, args.fast, jobs=args.jobs)
    # all
    failures = 0
    names = sorted(EXPERIMENTS)
    for name, result in zip(names, run_experiments(names, jobs=args.jobs, fast=args.fast)):
        print(result.to_text())
        print()
        if not args.no_check:
            try:
                check_experiment(result)
                print(f"[{name}] shape checks passed")
            except AssertionError as exc:
                print(f"[{name}] SHAPE CHECK FAILED: {exc}", file=sys.stderr)
                failures += 1
        print()
    return 1 if failures else 0


def _write_report(output_path: str, fast: bool, jobs: int = 1) -> int:
    """Run every experiment and write a single markdown report."""
    from repro.experiments.registry import check_experiment

    lines = [
        "# Reproduction report",
        "",
        "Regenerated tables/figures of *Efficient Cooperative MIMO Paradigms "
        "for Cognitive Radio Networks* (Chen, Hong & Chen).",
        "",
    ]
    failures = 0
    names = sorted(EXPERIMENTS)
    for name, result in zip(names, run_experiments(names, jobs=jobs, fast=fast)):
        try:
            check_experiment(result)
            status = "shape checks passed"
        except AssertionError as exc:
            status = f"SHAPE CHECK FAILED: {exc}"
            failures += 1
        lines.append(f"## {name}: {result.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.to_text())
        lines.append("```")
        lines.append("")
        lines.append(f"*{status}*")
        lines.append("")
    with open(output_path, "w") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {output_path} ({len(EXPERIMENTS)} experiments, {failures} failures)")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
