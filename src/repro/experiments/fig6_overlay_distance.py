"""Figure 6 — how far relaying SUs can sit from the primary users.

Sweep: direct distance D1 in 150..350 m, m in {2, 3} cooperating SUs,
bandwidth in {20 kHz, 40 kHz}; direct BER target 0.005, relayed target
0.0005 (10x better), constellation size optimized in 1..16 — exactly the
Section 6.1 protocol.

Both e_bar_b conventions are reported (see
:func:`repro.energy.ebar.average_ber` and EXPERIMENTS.md): the paper's
quoted example (D1 = 250, m = 3, B = 40k => D2 ≈ 235, D3 ≈ 406, ratio
sqrt(3)) is only consistent with the (mt, mr)-symmetric "diversity_only"
table, which is therefore the headline convention for the D3 > D2 claim.
"""

from __future__ import annotations

import numpy as np

from repro.core.overlay import OverlaySystem
from repro.energy.model import EnergyModel
from repro.experiments.registry import ExperimentResult

__all__ = ["run", "check"]

D1_VALUES = (150.0, 200.0, 250.0, 300.0, 350.0)
M_VALUES = (2, 3)
BANDWIDTHS = (20e3, 40e3)
CONVENTIONS = ("paper", "diversity_only")


def _cell_rows(task):
    """Rows of one independent (convention, B, m) cell — the parallel unit.

    Module-level (hence picklable) and a pure function of its arguments, so
    running cells serially or across worker processes yields bit-identical
    rows.  The D1 axis inside the cell is swept vectorized.
    """
    convention, bw, m, d1_values = task
    system = OverlaySystem(EnergyModel(ebar_convention=convention))
    return [
        (
            convention,
            result.bandwidth,
            result.m,
            result.d1,
            result.e1,
            result.b_direct,
            result.d2,
            result.d3,
        )
        for result in system.distance_analyses(d1_values, m, bw)
    ]


def run(seed: int = 0, fast: bool = False, jobs: int = 1) -> ExperimentResult:
    """Regenerate the Figure 6(a)/(b) series (deterministic; seed unused).

    ``jobs > 1`` fans the independent (convention, B, m) cells over worker
    processes; the rows are bit-identical to the serial run.
    """
    d1_values = D1_VALUES[::2] if fast else D1_VALUES
    tasks = [
        (convention, bw, m, d1_values)
        for convention in CONVENTIONS
        for bw in BANDWIDTHS
        for m in M_VALUES
    ]
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            chunks = list(pool.map(_cell_rows, tasks))
    else:
        chunks = [_cell_rows(task) for task in tasks]
    rows = [row for chunk in chunks for row in chunk]
    return ExperimentResult(
        experiment_id="fig6",
        title="Distance of relaying SUs from Pt (D2, Fig 6a) and Pr (D3, Fig 6b)",
        columns=("convention", "B", "m", "D1", "E1_j_per_bit", "b", "D2_m", "D3_m"),
        rows=rows,
        paper_values={
            "example": "D1=250, m=3, B=40k -> D2=235 m, D3=406 m (ratio 1.73)",
            "shape": "distances grow with D1 and B; D3 > D2; m=3 >= m=2 in Fig 6b",
        },
        notes=(
            "Both e_bar_b conventions shown; the diversity_only rows carry the "
            "paper's D3 > D2 asymmetry (ratio ~sqrt(m)), the paper rows make "
            "D2 ~ D3.  Absolute distances exceed the paper's by ~3x for both "
            "conventions (the paper's unpublished e_bar_b tables were more "
            "conservative); every ordering and trend matches."
        ),
    )


def check(result: ExperimentResult) -> None:
    """Shape assertions for Figure 6."""
    for convention in CONVENTIONS:
        for bw in BANDWIDTHS:
            for m in M_VALUES:
                rows = result.select(convention=convention, B=bw, m=m)
                assert rows, f"missing rows for {convention}/B={bw}/m={m}"
                d1s = [r[3] for r in rows]
                d2s = [r[6] for r in rows]
                d3s = [r[7] for r in rows]
                # distances grow with the direct distance D1
                assert all(np.diff(d2s) > 0), f"D2 not increasing in D1 ({convention}, m={m})"
                assert all(np.diff(d3s) > 0), f"D3 not increasing in D1 ({convention}, m={m})"
                # relays sit far away: comparable to or beyond D1 itself
                assert all(d2 > d1 for d1, d2 in zip(d1s, d2s)), "relays not far from Pt"

    # wider bandwidth -> longer (never shorter) distances.  In this model
    # the circuit terms of the direct budget and the SIMO link cancel
    # exactly when both optimize to the same b, making D2 B-independent;
    # D3 carries the reception circuit energy e^{MIMOr} and therefore
    # strictly gains from bandwidth (see EXPERIMENTS.md).
    for convention in CONVENTIONS:
        for m in M_VALUES:
            lo = result.select(convention=convention, B=BANDWIDTHS[0], m=m)
            hi = result.select(convention=convention, B=BANDWIDTHS[1], m=m)
            for r_lo, r_hi in zip(lo, hi):
                assert r_hi[6] >= r_lo[6] * 0.999, (
                    f"D2 shrank with bandwidth ({convention}, m={m}, D1={r_lo[3]})"
                )
                assert r_hi[7] > r_lo[7], (
                    f"D3 did not gain from bandwidth ({convention}, m={m}, D1={r_lo[3]})"
                )

    # diversity_only (the convention matching the paper's printed numbers):
    # D3 > D2 with ratio approaching sqrt(m)
    for m in M_VALUES:
        for bw in BANDWIDTHS:
            for row in result.select(convention="diversity_only", B=bw, m=m):
                d2, d3 = row[6], row[7]
                ratio = d3 / d2
                # sqrt(m) from the MISO power sharing, dragged down by the
                # relay's reception energy (strongest at small D1/B where
                # circuit energy is a larger budget share)
                floor = 1.0 + 0.25 * (np.sqrt(m) - 1.0)
                assert ratio > floor, f"D3/D2={ratio:.2f} below {floor:.2f} (m={m})"
                assert ratio < np.sqrt(m) * 1.05, f"D3/D2={ratio:.2f} exceeds sqrt(m)"

    # Fig 6(b): m=3 relays reach at least as far as m=2 (paper: true for
    # D1 > 170 m; in our table it holds throughout)
    for convention in CONVENTIONS:
        for bw in BANDWIDTHS:
            m2 = result.select(convention=convention, B=bw, m=2)
            m3 = result.select(convention=convention, B=bw, m=3)
            for r2, r3 in zip(m2, m3):
                if r2[3] > 170.0:
                    assert r3[7] >= r2[7] * 0.999, (
                        f"m=3 D3 below m=2 at D1={r2[3]} ({convention}, B={bw})"
                    )
