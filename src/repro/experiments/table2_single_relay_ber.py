"""Table 2 — single-relay overlay BER (equilateral-triangle testbed).

Protocol (Section 6.4): transmitter, relay and receiver on a 2 m
equilateral triangle, a thick board obstructing the direct path, BPSK at
250 kbps, 100 000 bits per experiment, equal-gain combination; three
experiments plus the average, with and without the cooperative relay.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.testbed.environment import table2_testbed

__all__ = ["run", "check"]

N_BITS = 100_000
N_EXPERIMENTS = 3

#: Paper Table 2 rows (experiment -> (with cooperation, without)).
PAPER = {1: (0.0221, 0.0913), 2: (0.0227, 0.1273), 3: (0.0289, 0.1076)}
PAPER_AVG = (0.0246, 0.1087)


def run(seed: int = 42, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 2: three trials and their average."""
    n_bits = N_BITS // 10 if fast else N_BITS
    testbed = table2_testbed()
    rows = []
    coop_bers, direct_bers = [], []
    for trial in range(1, N_EXPERIMENTS + 1):
        coop = testbed.run_relay_experiment(
            "tx", ["relay"], "rx", n_bits=n_bits, rng=seed + 2 * trial
        )
        direct = testbed.run_relay_experiment(
            "tx", [], "rx", n_bits=n_bits, rng=seed + 2 * trial + 1
        )
        coop_bers.append(coop.ber)
        direct_bers.append(direct.ber)
        rows.append((f"experiment {trial}", coop.ber, direct.ber))
    rows.append(("average", float(np.mean(coop_bers)), float(np.mean(direct_bers))))
    return ExperimentResult(
        experiment_id="table2",
        title="Single-relay overlay BER (with vs without cooperation)",
        columns=("trial", "with_cooperation", "without_cooperation"),
        rows=rows,
        paper_values={"rows": PAPER, "average": PAPER_AVG},
        notes=(
            "Simulated testbed calibrated to the paper's obstructed direct "
            "link (~11% BER); the cooperation factor is the reproduced shape."
        ),
    )


def check(result: ExperimentResult) -> None:
    """Shape assertions for Table 2."""
    avg = result.select(trial="average")[0]
    coop_avg, direct_avg = avg[1], avg[2]

    # the obstructed direct link is bad (around the paper's ~11%)
    assert 0.04 <= direct_avg <= 0.25, f"direct BER {direct_avg:.3f} out of regime"
    # cooperation brings it down a lot (paper: 10.87% -> 2.46%, ~4.4x)
    assert coop_avg < direct_avg, "cooperation did not help"
    assert direct_avg / coop_avg > 2.5, (
        f"cooperation factor {direct_avg / coop_avg:.1f}x below the paper's ~4x regime"
    )
    # every individual trial shows the effect too
    for row in result.rows[:-1]:
        assert row[1] < row[2], f"{row[0]}: cooperation worse than direct"
