"""Section 6.2's quoted e_bar_b magnitudes and the SISO-vs-MIMO gap.

The paper anchors its underlay analysis on two tabulated values:

    "when b = 2, e_bar_b = 1.90e-18 if mt = mr = 1 (SISO system) and
     e_bar_b = 3.20e-20 if mt = 2 and mr = 3 (MIMO system)"

(at the Figure 7 operating point p = 0.001), and on the claim that the
value spread across configurations reaches three orders of magnitude.
This experiment regenerates those numbers from our solver, which is the
tightest *quantitative* anchor between the reproduction and the paper.
"""

from __future__ import annotations

from repro.energy.ebar import solve_ebar
from repro.experiments.registry import ExperimentResult

__all__ = ["run", "check"]

TARGET_BER = 0.001
B = 2

#: (mt, mr) -> value printed in the paper (where printed).
PAPER = {(1, 1): 1.90e-18, (2, 3): 3.20e-20}
CONFIGS = ((1, 1), (1, 2), (2, 1), (2, 2), (1, 3), (3, 1), (2, 3), (3, 3), (4, 4))


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Solve e_bar_b over the configuration grid at the paper's anchor point."""
    rows = []
    for mt, mr in CONFIGS:
        value = solve_ebar(TARGET_BER, B, mt, mr)
        paper = PAPER.get((mt, mr))
        ratio = value / paper if paper else None
        rows.append((mt, mr, value, paper if paper else "-", ratio if ratio else "-"))
    return ExperimentResult(
        experiment_id="ebar",
        title=f"e_bar_b(p={TARGET_BER}, b={B}) across cooperative configurations",
        columns=("mt", "mr", "ebar_j", "paper_j", "ours_over_paper"),
        rows=rows,
        paper_values={"quotes": PAPER, "spread": "up to three orders of magnitude"},
        notes=(
            "Solved from the exact closed-form Rayleigh-diversity average of "
            "formulas (5)/(6); the residual offset vs the paper's two quoted "
            "values reflects their unstated tabulation conventions."
        ),
    )


def check(result: ExperimentResult) -> None:
    """Shape assertions for the e_bar_b anchor values."""
    values = {(r[0], r[1]): r[2] for r in result.rows}

    # the two quoted anchors agree within a small constant factor
    for cfg, paper in PAPER.items():
        ours = values[cfg]
        ratio = ours / paper
        assert 0.3 < ratio < 3.0, f"e_bar_b{cfg} off by {ratio:.2f}x vs the paper"

    # the SISO -> 2x3 gap is about two orders of magnitude (paper: 59x)
    gap = values[(1, 1)] / values[(2, 3)]
    assert 30.0 < gap < 300.0, f"SISO/2x3 gap {gap:.0f}x outside the paper's regime"

    # e_bar_b decreases monotonically with diversity order along both axes
    assert values[(1, 1)] > values[(1, 2)] > values[(1, 3)]
    assert values[(1, 1)] > values[(2, 2)] > values[(3, 3)] > values[(4, 4)]

    # the full spread across the grid is in the multi-order regime (the
    # paper quotes "up to three orders" over its larger sweep)
    spread = max(values.values()) / min(values.values())
    assert spread > 100.0, f"configuration spread {spread:.0f}x below the paper's claim"
