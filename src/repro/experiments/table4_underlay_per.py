"""Table 4 — underlay packet error rate (image transfer testbed).

Protocol (Section 6.4): two secondary transmitters next to each other,
receiver ~12 feet away; a 474-packet image (1500-byte packets) sent with
GMSK at transmit amplitudes 800 / 600 / 400; cooperative (both
transmitters simultaneously) vs non-cooperative (one transmitter); PER at
the secondary receiver, plus whether the image is recoverable.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.modulation.gmsk import GMSKModem
from repro.testbed.environment import table4_testbed
from repro.testbed.image import IMAGE_PACKETS, PACKET_BYTES

__all__ = ["run", "check"]

AMPLITUDES = (800.0, 600.0, 400.0)
PACKET_BITS = PACKET_BYTES * 8

#: Paper Table 4: amplitude -> (with cooperation, without cooperation).
PAPER = {800: (0.0, 0.2485), 600: (0.0612, 0.7028), 400: (0.1372, 0.971)}


def _verdict(per: float) -> str:
    if per <= 0.02:
        return "recovered"
    if per <= 0.25:
        return "recovered with distortions"
    return "cannot be recovered"


def run(seed: int = 4, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 4."""
    n_packets = IMAGE_PACKETS // 6 if fast else IMAGE_PACKETS
    modem = GMSKModem()
    rows = []
    coop_pers, solo_pers = [], []
    for amp in AMPLITUDES:
        testbed = table4_testbed()
        for name in ("tx1", "tx2"):
            testbed.nodes[name] = testbed.nodes[name].with_amplitude(amp)
        coop = testbed.run_packet_experiment(
            ["tx1", "tx2"],
            "rx",
            n_packets=n_packets,
            packet_bits=PACKET_BITS,
            modem=modem,
            power_constraint="coherent",
            rng=seed + int(amp),
        )
        solo = testbed.run_packet_experiment(
            ["tx1"],
            "rx",
            n_packets=n_packets,
            packet_bits=PACKET_BITS,
            modem=modem,
            rng=seed + int(amp) + 1,
        )
        coop_pers.append(coop.per)
        solo_pers.append(solo.per)
        rows.append(
            (int(amp), coop.per, solo.per, _verdict(coop.per), _verdict(solo.per))
        )
    rows.append(
        (
            "average",
            float(np.mean(coop_pers)),
            float(np.mean(solo_pers)),
            "",
            "",
        )
    )
    return ExperimentResult(
        experiment_id="table4",
        title="Underlay PER: cooperative (2 tx) vs non-cooperative (1 tx)",
        columns=(
            "amplitude",
            "per_with_cooperation",
            "per_without",
            "image_with",
            "image_without",
        ),
        rows=rows,
        paper_values={"rows": PAPER, "average": (0.0661, 0.6408)},
        notes=(
            "Cooperative transmission models the testbed's simultaneous "
            "identical-waveform transmission (coherent LOS addition); solo "
            "PER calibrated to the paper's {25, 70, 97}% ladder."
        ),
    )


def check(result: ExperimentResult) -> None:
    """Shape assertions for Table 4."""
    data_rows = [r for r in result.rows if isinstance(r[0], int)]
    assert len(data_rows) == len(AMPLITUDES)
    solo = [r[2] for r in data_rows]
    coop = [r[1] for r in data_rows]

    # lower amplitude -> higher PER, for both modes
    assert all(np.diff(solo) > 0), f"solo PER not increasing as amplitude falls: {solo}"
    assert coop[0] <= coop[1] <= coop[2] + 1e-9, f"coop PER not monotone: {coop}"
    # cooperation wins at every amplitude
    for c, s, row in zip(coop, solo, data_rows):
        assert c < s, f"cooperation not better at amplitude {row[0]}"
    # regimes from the paper: solo collapses at low amplitude, coop survives
    assert solo[0] < 0.45, f"solo PER at 800 should be moderate, got {solo[0]:.3f}"
    assert solo[2] > 0.9, f"solo PER at 400 should be catastrophic, got {solo[2]:.3f}"
    avg = result.rows[-1]
    assert avg[1] < 0.15, f"average coop PER {avg[1]:.3f} too high"
    assert avg[2] > 0.45, f"average solo PER {avg[2]:.3f} too low"
    # the qualitative image verdicts: recoverable with cooperation at the
    # top two amplitudes, unrecoverable without cooperation at 600 and 400
    assert data_rows[0][3] == "recovered"
    assert data_rows[1][4] == "cannot be recovered"
    assert data_rows[2][4] == "cannot be recovered"
