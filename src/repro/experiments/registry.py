"""Experiment result container and registry."""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiments",
    "check_experiment",
]


@dataclass
class ExperimentResult:
    """A regenerated table/figure: rows plus provenance.

    ``rows`` are tuples aligned with ``columns``; ``paper_values`` carries
    the corresponding numbers printed in the paper (where the paper prints
    any) for side-by-side reporting in EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Tuple]
    notes: str = ""
    paper_values: Optional[Dict[str, object]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Render as an aligned monospace table."""

        def fmt(cell) -> str:
            if isinstance(cell, float):
                return float_format.format(cell)
            return str(cell)

        header = [str(c) for c in self.columns]
        body = [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"# {self.experiment_id}: {self.title}",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if self.notes:
            lines.append("")
            lines.append(self.notes.strip())
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serializable form (for ``repro-experiments run --json``).

        Dict keys that JSON cannot represent (e.g. the ``(mt, mr)`` tuples
        of some ``paper_values``) are stringified.
        """

        def sanitize(value):
            if isinstance(value, dict):
                return {str(k): sanitize(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [sanitize(v) for v in value]
            return value

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
            "paper_values": sanitize(self.paper_values),
            "metadata": sanitize(dict(self.metadata)),
        }

    def to_csv(self) -> str:
        """Comma-separated form: a header row plus one line per data row."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buf.getvalue()

    def column(self, name: str) -> List:
        """All values of one column, by name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def select(self, **criteria) -> List[Tuple]:
        """Rows whose named columns equal the given values."""
        idxs = {name: list(self.columns).index(name) for name in criteria}
        return [
            row
            for row in self.rows
            if all(row[idxs[name]] == value for name, value in criteria.items())
        ]


#: experiment id -> module path (modules expose run()/check()).
EXPERIMENTS: Dict[str, str] = {
    "fig6": "repro.experiments.fig6_overlay_distance",
    "fig7": "repro.experiments.fig7_underlay_energy",
    "table1": "repro.experiments.table1_interweave_amplitude",
    "fig8": "repro.experiments.fig8_beam_pattern",
    "table2": "repro.experiments.table2_single_relay_ber",
    "table3": "repro.experiments.table3_multi_relay_ber",
    "table4": "repro.experiments.table4_underlay_per",
    "ebar": "repro.experiments.ebar_magnitudes",
    "game": "repro.experiments.game_baseline",
}


def _module(experiment_id: str):
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return importlib.import_module(EXPERIMENTS[experiment_id])


def _accepted_kwargs(experiment_id: str, kwargs: Dict[str, object]) -> Dict[str, object]:
    """Drop keyword arguments the experiment's ``run()`` does not accept.

    Experiments opt into capabilities (``jobs``, ``fast``, ...) by declaring
    the parameter; the fan-out helpers pass one kwargs dict for all of them.
    """
    params = inspect.signature(_module(experiment_id).run).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in params}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id and return its result."""
    return _module(experiment_id).run(**kwargs)


def _run_task(task) -> ExperimentResult:
    """One fan-out unit of :func:`run_experiments` (module-level: picklable)."""
    experiment_id, kwargs = task
    return _module(experiment_id).run(**kwargs)


def run_experiments(
    experiment_ids: Sequence[str],
    jobs: int = 1,
    seed: Optional[int] = None,
    **kwargs,
) -> List[ExperimentResult]:
    """Run several experiments, optionally fanned over worker processes.

    Parameters
    ----------
    experiment_ids:
        Ids from :data:`EXPERIMENTS`, run (or dispatched) in the given order;
        results come back in the same order.
    jobs:
        Number of worker processes.  1 (default) runs in-process; the
        parallel path executes the exact same task functions with the exact
        same arguments, so results are bit-identical to the serial run.
    seed:
        When given, a :class:`numpy.random.SeedSequence` is spawned into one
        child per experiment and each task receives its child-derived seed.
        The derivation depends only on ``seed`` and the position in
        ``experiment_ids`` — not on scheduling — so serial and parallel runs
        see identical seeds.
    kwargs:
        Forwarded to each experiment's ``run()``, filtered to the keyword
        arguments it accepts (e.g. ``fast``, and ``jobs`` for experiments
        that parallelize internally).
    """
    from repro.utils.rng import spawn_seed_sequences

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    task_seeds: List[Optional[int]] = [None] * len(experiment_ids)
    if seed is not None:
        children = spawn_seed_sequences(seed, len(experiment_ids))
        task_seeds = [int(child.generate_state(1)[0]) for child in children]
    tasks = []
    for experiment_id, task_seed in zip(experiment_ids, task_seeds):
        task_kwargs = dict(kwargs)
        if task_seed is not None:
            task_kwargs["seed"] = task_seed
        tasks.append((experiment_id, _accepted_kwargs(experiment_id, task_kwargs)))
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(_run_task, tasks))
    return [_run_task(task) for task in tasks]


def check_experiment(result: ExperimentResult) -> None:
    """Run the shape assertions of the experiment that produced ``result``."""
    _module(result.experiment_id).check(result)
