"""Experiment harness: one module per table/figure of the paper's Section 6.

Every experiment module exposes

* ``run(seed=..., fast=False) -> ExperimentResult`` — regenerates the
  artifact's rows/series (``fast=True`` shrinks Monte-Carlo sizes for CI);
* ``check(result)`` — asserts the *shape* claims the paper makes about the
  artifact (who wins, rough factors, orderings); raises ``AssertionError``
  with a diagnostic message otherwise.

Use :func:`repro.experiments.registry.run_experiment` or the
``repro-experiments`` CLI to execute them by id (``fig6``, ``fig7``,
``table1``, ``fig8``, ``table2``, ``table3``, ``table4``, ``ebar``);
:func:`repro.experiments.registry.run_experiments` fans several over worker
processes (``--jobs`` on the CLI) with bit-identical results.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
    run_experiments,
)

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment", "run_experiments"]
