"""Figure 8 — cooperative beamformer pattern in a real (multipath) room.

Protocol (Section 6.4): two transmit nodes form a beamformer with a null
designed at 120 degrees; the receiver walks a 2 m-diameter semicircle
around the pair's midpoint in 20-degree steps; the recorded amplitude is
normalized and compared with (i) the simulated (line-of-sight) radiation
pattern and (ii) a SISO transmission measured the same way.

The indoor room is modeled with :class:`MultipathEnvironment.random_indoor`
echoes, which is exactly the mechanism the paper cites for the null not
reaching zero; measurements average a few independent echo draws (multiple
recordings).
"""

from __future__ import annotations

import numpy as np

from repro.beamforming.pattern import design_null_delay, radiation_pattern
from repro.channel.multipath import MultipathEnvironment
from repro.utils.rng import as_rng
from repro.experiments.registry import ExperimentResult

__all__ = ["run", "check"]

NULL_ANGLE_DEG = 120.0
ANGLES_DEG = tuple(range(0, 181, 20))
RADIUS_M = 1.0  # 2 m diameter semicircle
WAVELENGTH_M = 0.1224  # 2.45 GHz (RFX2400)
SPACING_M = WAVELENGTH_M / 2.0


def run(seed: int = 7, fast: bool = False) -> ExperimentResult:
    """Regenerate the three Figure 8 curves at the measured angles."""
    gen = as_rng(seed)
    n_rooms = 4 if fast else 8
    delta = design_null_delay(SPACING_M, WAVELENGTH_M, NULL_ANGLE_DEG)
    angles = np.array(ANGLES_DEG, dtype=float)

    # (i) simulated LOS radiation pattern at the measurement radius
    theory = radiation_pattern(SPACING_M, WAVELENGTH_M, delta, angles, radius=RADIUS_M)

    # (ii)/(iii) "measured": average over several room realizations.
    # Geometry matches repro.beamforming.pattern: elements on the x-axis,
    # angles measured from the array axis.
    beam_meas = np.zeros(angles.shape)
    siso_meas = np.zeros(angles.shape)
    tx_pair = np.array([[SPACING_M / 2.0, 0.0], [-SPACING_M / 2.0, 0.0]])
    tx_solo = tx_pair[:1]
    # the whole semicircle walk is one batched field evaluation per room
    # (the room draws consume the RNG exactly as the per-angle loop did)
    rad = np.deg2rad(angles)
    points = np.stack([RADIUS_M * np.cos(rad), RADIUS_M * np.sin(rad)], axis=1)
    for _ in range(n_rooms):
        env = MultipathEnvironment.random_indoor(
            n_scatterers=6,
            inner_radius_m=1.5,
            outer_radius_m=5.0,
            echo_amplitude=0.22,
            rng=gen,
        )
        beam_meas += env.amplitude_at(
            tx_pair, points, WAVELENGTH_M, tx_phases_rad=np.array([delta, 0.0])
        )
        siso_meas += env.amplitude_at(tx_solo, points, WAVELENGTH_M)
    beam_meas /= n_rooms
    siso_meas /= n_rooms

    # The pattern curve is normalized to its own maximum (it shows shape);
    # both measured curves share the SISO maximum as the common reference so
    # the beamformer's diversity gain stays visible (the paper's plot shows
    # the beamformer curve above the SISO curve away from the null).
    theory_n = theory / theory.max()
    reference = siso_meas.max()
    beam_n = beam_meas / reference
    siso_n = siso_meas / reference

    rows = [
        (float(a), float(t), float(b), float(s))
        for a, t, b, s in zip(angles, theory_n, beam_n, siso_n)
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Beamformer pattern vs measured amplitudes (null at 120 deg)",
        columns=("angle_deg", "pattern_sim", "beamformer_measured", "siso_measured"),
        rows=rows,
        metadata={"delta_rad": float(delta), "n_rooms": n_rooms},
        paper_values={
            "null": "received amplitude very small at 120 deg but non-zero "
            "(multipath); beamformer beats SISO outside ~20 deg of the null",
        },
        notes=(
            "pattern_sim is normalized to its own maximum; the two measured "
            "curves share the SISO maximum as reference, so beamformer values "
            "near 2 show the pair's coherent (diversity) gain."
        ),
    )


def check(result: ExperimentResult) -> None:
    """Shape assertions for Figure 8."""
    angles = np.array(result.column("angle_deg"))
    theory = np.array(result.column("pattern_sim"))
    beam = np.array(result.column("beamformer_measured"))
    siso = np.array(result.column("siso_measured"))

    # the designed null lands at 120 degrees in the LOS pattern
    assert angles[np.argmin(theory)] == NULL_ANGLE_DEG, "LOS pattern null misplaced"
    assert theory.min() < 0.05, "LOS pattern null not deep"

    # the measured null: deepest at 120 deg, small but NOT zero (multipath)
    assert angles[np.argmin(beam)] == NULL_ANGLE_DEG, "measured null misplaced"
    assert beam.min() > 0.0, "multipath should keep the measured null non-zero"
    assert beam.min() < 0.4 * beam.max(), (
        f"measured null {beam.min():.3f} not clearly below the beam peak"
    )

    # away from the null (outside +-20 deg) the beamformer beats SISO on
    # the shared normalization, at most angles and on average
    away = np.abs(angles - NULL_ANGLE_DEG) > 20.0
    assert float(np.mean(beam[away])) > float(np.mean(siso[away])), (
        "beamformer does not beat SISO away from the null"
    )
    assert np.mean(beam[away] >= siso[away] * 0.95) > 0.6, (
        "beamformer below SISO at too many off-null angles"
    )
