"""Spectrum sensing for the interweave paradigm.

The paper's cognitive-radio premise (Section 1) endows SUs with "the
ability to sense the electromagnetic environment"; Algorithm 3's Step 1
has the transmit-cluster head "determine the PU to share the frequency
based on the sensed environment".  This package supplies that capability:

* :mod:`repro.sensing.detector` — the classical energy detector: test
  statistic, exact false-alarm/detection probabilities (central and
  non-central chi-squared), threshold design, and a Monte-Carlo sampler;
* :mod:`repro.sensing.cooperative` — cooperative sensing across multiple
  SUs with OR/AND/majority decision fusion, the standard remedy for
  shadowed single-sensor detection.
"""

from repro.sensing.cooperative import CooperativeSensor, fuse_decisions
from repro.sensing.detector import EnergyDetector

__all__ = ["EnergyDetector", "CooperativeSensor", "fuse_decisions"]
