"""The energy detector.

An SU listens for ``n_samples`` complex baseband samples and compares the
normalized received energy

    T = sum_k |y_k|^2 / sigma^2

against a threshold.  Under the noise-only hypothesis H0, ``T`` is
Gamma(n, 1)-distributed; under H1 with a Gaussian primary signal of SNR
``gamma`` (the standard model for wideband primary waveforms), ``T`` is
Gamma(n, 1 + gamma).  Both tails are therefore regularized incomplete
gamma functions, giving exact closed forms for the false-alarm and
detection probabilities and for constant-false-alarm-rate (CFAR)
threshold design:

    P_fa = Q(n, lambda)                    P_d = Q(n, lambda / (1 + gamma))

where ``Q`` is ``scipy.special.gammaincc``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["EnergyDetector"]


@dataclass(frozen=True)
class EnergyDetector:
    """A CFAR energy detector over ``n_samples`` complex samples.

    Parameters
    ----------
    n_samples:
        Sensing window length (complex samples).
    target_pfa:
        Designed false-alarm probability; the threshold is set exactly.
    """

    n_samples: int
    target_pfa: float = 0.05

    def __post_init__(self) -> None:
        check_positive_int(self.n_samples, "n_samples")
        check_probability(self.target_pfa, "target_pfa")

    # ------------------------------------------------------------------ #
    # Design                                                             #
    # ------------------------------------------------------------------ #

    @property
    def threshold(self) -> float:
        """CFAR threshold: ``P(T > lambda | H0) = target_pfa`` exactly."""
        return float(special.gammainccinv(self.n_samples, self.target_pfa))

    def false_alarm_probability(self, threshold: float = None) -> float:
        """``P_fa`` at the given (default: designed) threshold."""
        lam = self.threshold if threshold is None else float(threshold)
        if lam < 0.0:
            raise ValueError("threshold must be non-negative")
        return float(special.gammaincc(self.n_samples, lam))

    def detection_probability(self, snr_linear: float, threshold: float = None) -> float:
        """``P_d`` for a Gaussian primary signal at the given SNR."""
        if snr_linear < 0.0:
            raise ValueError("snr_linear must be non-negative")
        lam = self.threshold if threshold is None else float(threshold)
        if lam < 0.0:
            raise ValueError("threshold must be non-negative")
        return float(special.gammaincc(self.n_samples, lam / (1.0 + snr_linear)))

    @staticmethod
    def samples_required(
        snr_linear: float,
        target_pfa: float = 0.05,
        target_pd: float = 0.95,
        max_samples: int = 2**24,
    ) -> int:
        """Smallest sensing window meeting (P_fa, P_d) at the given SNR.

        Binary search over the exact closed forms; raises ``ValueError``
        when even ``max_samples`` cannot meet the spec (SNR too low).
        Exhibits the classical ``N ~ 1/gamma^2`` low-SNR scaling.
        """
        check_positive(snr_linear, "snr_linear")
        check_probability(target_pfa, "target_pfa")
        check_probability(target_pd, "target_pd")
        if target_pd <= target_pfa:
            raise ValueError("target_pd must exceed target_pfa")

        def meets(n: int) -> bool:
            det = EnergyDetector(n, target_pfa)
            return det.detection_probability(snr_linear) >= target_pd

        if not meets(max_samples):
            raise ValueError(
                f"cannot reach Pd={target_pd} at this SNR within {max_samples} samples"
            )
        lo, hi = 1, max_samples
        while lo < hi:
            mid = (lo + hi) // 2
            if meets(mid):
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------ #
    # Operation                                                          #
    # ------------------------------------------------------------------ #

    def statistic(self, samples: np.ndarray, noise_variance: float = 1.0) -> float:
        """Normalized energy statistic of a sample vector."""
        check_positive(noise_variance, "noise_variance")
        arr = np.asarray(samples)
        return float(np.sum(np.abs(arr) ** 2) / noise_variance)

    def decide(self, samples: np.ndarray, noise_variance: float = 1.0) -> bool:
        """True = primary detected (statistic above the CFAR threshold)."""
        return self.statistic(samples, noise_variance) > self.threshold

    def roc_curve(self, snr_linear: float, n_points: int = 50):
        """Receiver operating characteristic at a fixed SNR.

        Returns ``(pfa, pd)`` arrays swept over thresholds (log-spaced
        false-alarm targets from 1e-6 to 0.5), for plotting or AUC-style
        comparisons between sensing configurations.
        """
        if snr_linear < 0.0:
            raise ValueError("snr_linear must be non-negative")
        check_positive_int(n_points, "n_points")
        pfas = np.logspace(-6, np.log10(0.5), n_points)
        thresholds = special.gammainccinv(self.n_samples, pfas)
        pds = special.gammaincc(self.n_samples, thresholds / (1.0 + snr_linear))
        return pfas, np.asarray(pds, dtype=float)

    def simulate(
        self,
        snr_linear: float,
        n_trials: int = 10_000,
        primary_present: bool = True,
        rng: RngLike = None,
    ) -> float:
        """Monte-Carlo detection (or false-alarm) rate.

        Draws the exact Gamma statistics rather than raw samples, which is
        equivalent and lets 10^4 trials of 10^4-sample windows run
        instantly.
        """
        if snr_linear < 0.0:
            raise ValueError("snr_linear must be non-negative")
        check_positive_int(n_trials, "n_trials")
        gen = as_rng(rng)
        scale = (1.0 + snr_linear) if primary_present else 1.0
        stats = gen.gamma(self.n_samples, scale, n_trials)
        return float(np.mean(stats > self.threshold))
