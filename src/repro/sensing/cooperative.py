"""Cooperative spectrum sensing with hard-decision fusion.

A single SU in a deep shadow misses the primary; the CoMIMONet remedy is
the same as for data transmission — cooperate.  Each cluster member runs
its own energy detector, sends its 1-bit decision to the head over the
intra-cluster link, and the head fuses them:

* **OR** — declare the primary present if *any* member detects it
  (protective of the PU: detection probability compounds, false alarms
  accumulate);
* **AND** — all members must agree (aggressive spectrum reuse);
* **MAJORITY** — at least half (the k-out-of-n middle ground).

Closed forms below assume independent per-sensor fading/noise, the
standard modeling assumption for spatially separated cluster members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats

from repro.sensing.detector import EnergyDetector
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int

__all__ = ["fuse_decisions", "CooperativeSensor"]

_RULES = ("or", "and", "majority")


def fuse_decisions(decisions: Sequence[bool], rule: str = "or") -> bool:
    """Fuse hard decisions from multiple sensors."""
    if rule not in _RULES:
        raise ValueError(f"rule must be one of {_RULES}, got {rule!r}")
    votes = [bool(d) for d in decisions]
    if not votes:
        raise ValueError("at least one decision is required")
    if rule == "or":
        return any(votes)
    if rule == "and":
        return all(votes)
    return sum(votes) * 2 >= len(votes)


def _fused_probability(p_single: float, n: int, rule: str) -> float:
    """Probability the fused decision fires when each sensor fires w.p. p."""
    if rule == "or":
        return 1.0 - (1.0 - p_single) ** n
    if rule == "and":
        return p_single**n
    # majority: at least ceil(n/2) of n
    k = (n + 1) // 2
    return float(stats.binom.sf(k - 1, n, p_single))


@dataclass(frozen=True)
class CooperativeSensor:
    """A cluster of identical energy detectors with decision fusion.

    Parameters
    ----------
    detector:
        The per-member detector (window length + target P_fa).
    n_sensors:
        Cluster size.
    rule:
        Fusion rule: ``"or"``, ``"and"`` or ``"majority"``.
    """

    detector: EnergyDetector
    n_sensors: int
    rule: str = "or"

    def __post_init__(self) -> None:
        check_positive_int(self.n_sensors, "n_sensors")
        if self.rule not in _RULES:
            raise ValueError(f"rule must be one of {_RULES}, got {self.rule!r}")

    # ------------------------------------------------------------------ #

    def false_alarm_probability(self) -> float:
        """Fused ``P_fa`` (each sensor at the detector's designed P_fa)."""
        return _fused_probability(
            self.detector.false_alarm_probability(), self.n_sensors, self.rule
        )

    def detection_probability(self, snr_linear: float) -> float:
        """Fused ``P_d`` with equal per-sensor SNR."""
        return _fused_probability(
            self.detector.detection_probability(snr_linear), self.n_sensors, self.rule
        )

    def detection_probability_faded(
        self,
        mean_snr_linear: float,
        n_fades: int = 20_000,
        rng: RngLike = None,
    ) -> float:
        """Fused ``P_d`` under independent per-sensor Rayleigh fading.

        This is where cooperation earns its keep: a single sensor's ``P_d``
        collapses when its fade is deep, while the OR fusion over
        independently faded members stays high.  Monte-Carlo over the
        per-sensor instantaneous SNRs (exponential with the given mean).
        """
        if mean_snr_linear < 0.0:
            raise ValueError("mean_snr_linear must be non-negative")
        check_positive_int(n_fades, "n_fades")
        gen = as_rng(rng)
        snrs = gen.exponential(mean_snr_linear, (n_fades, self.n_sensors))
        # vectorized per-sensor detection probabilities at each fade
        lam = self.detector.threshold
        from scipy import special

        p_single = special.gammaincc(self.detector.n_samples, lam / (1.0 + snrs))
        fired = gen.random((n_fades, self.n_sensors)) < p_single
        if self.rule == "or":
            fused = fired.any(axis=1)
        elif self.rule == "and":
            fused = fired.all(axis=1)
        else:
            fused = fired.sum(axis=1) * 2 >= self.n_sensors
        return float(np.mean(fused))

    def decide(self, sample_sets: List[np.ndarray], noise_variance: float = 1.0) -> bool:
        """Fuse live decisions from per-member sample vectors."""
        if len(sample_sets) != self.n_sensors:
            raise ValueError(
                f"expected {self.n_sensors} sample sets, got {len(sample_sets)}"
            )
        decisions = [self.detector.decide(s, noise_variance) for s in sample_sets]
        return fuse_decisions(decisions, self.rule)
