"""Radiation patterns of the two-element cooperative beamformer.

Figure 8 of the paper plots (i) the simulated radiation pattern of the
designed beamformer (null at 120 degrees), (ii) the normalized received
amplitude measured on a 2 m semicircle in a multipath room, and (iii) the
SISO reference.  These helpers generate (i) and support the experiment
module that generates (ii)/(iii).

Angles are measured at the midpoint of the transmit pair *from the array
axis*: the two elements lie on the x-axis at ``(+-r/2, 0)`` and the
receiver semicircle spans 0..180 degrees above them.  Measuring from the
axis makes the pattern injective in ``cos(theta)`` over 0..180, so a null
"in the direction of 120 degree to two transmit nodes" (the paper's
wording) is unique — a broadside convention would alias 60 and 120 degrees.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.channel.multipath import MultipathEnvironment

__all__ = ["design_null_delay", "radiation_pattern", "pattern_null_angle"]


def design_null_delay(spacing: float, wavelength: float, null_angle_deg: float) -> float:
    """Phase offset putting the far-field null at ``null_angle_deg``.

    Element 1 (the delayed one) sits at ``(+r/2, 0)``, element 2 at
    ``(-r/2, 0)``; for an observation direction ``theta`` (from the array
    axis) the far-field path difference is ``d1 - d2 = -r cos(theta)``, so
    the total phase difference is ``Delta(theta) = delta + k r cos(theta)``.
    The null condition ``Delta = -pi`` gives
    ``delta = -pi - k r cos(theta_null)`` — the same two-ray convention as
    :meth:`repro.beamforming.pairwise.NullSteeringPair.delay_for_null`.
    """
    if spacing <= 0.0 or wavelength <= 0.0:
        raise ValueError("spacing and wavelength must be positive")
    k = 2.0 * np.pi / wavelength
    return float(-np.pi - k * spacing * np.cos(np.deg2rad(null_angle_deg)))


def radiation_pattern(
    spacing: float,
    wavelength: float,
    delta: float,
    angles_deg: np.ndarray,
    radius: Optional[float] = None,
    environment: Optional[MultipathEnvironment] = None,
) -> np.ndarray:
    """Received amplitude of the pair versus angle (not normalized).

    Parameters
    ----------
    spacing, wavelength:
        Pair geometry.  Elements sit at ``(0, +-spacing/2)``.
    delta:
        Phase offset of the element at ``(0, +spacing/2)``.
    angles_deg:
        Observation angles (degrees, standard polar convention).
    radius:
        Observation circle radius [m].  Default: a far-field proxy of
        ``1000 * spacing``.
    environment:
        Optional multipath environment (default pure line of sight).
    """
    if spacing <= 0.0 or wavelength <= 0.0:
        raise ValueError("spacing and wavelength must be positive")
    radius = radius if radius is not None else 1000.0 * spacing
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    env = environment or MultipathEnvironment.line_of_sight()
    tx = np.array([[spacing / 2.0, 0.0], [-spacing / 2.0, 0.0]])
    phases = np.array([delta, 0.0])
    angles = np.atleast_1d(np.asarray(angles_deg, dtype=float))
    out = np.empty(angles.shape)
    for i, a in enumerate(np.deg2rad(angles)):
        point = np.array([radius * np.cos(a), radius * np.sin(a)])
        out[i] = env.amplitude_at(tx, point, wavelength, tx_phases_rad=phases)
    return out


def pattern_null_angle(
    spacing: float,
    wavelength: float,
    delta: float,
    resolution_deg: float = 0.25,
) -> Tuple[float, float]:
    """Locate the pattern minimum over the 0..180-degree semicircle.

    Returns ``(angle_deg, amplitude)`` of the deepest point on a dense
    line-of-sight sweep — used to verify that :func:`design_null_delay`
    puts the null where it was asked to.  The search is restricted to the
    upper semicircle (the measurement arc): the pattern of a linear pair is
    mirror-symmetric about its axis, so the lower half holds the mirrored
    null at ``-theta``.
    """
    if resolution_deg <= 0.0:
        raise ValueError("resolution_deg must be positive")
    angles = np.arange(0.0, 180.0 + resolution_deg, resolution_deg)
    amps = radiation_pattern(spacing, wavelength, delta, angles)
    idx = int(np.argmin(amps))
    return float(angles[idx]), float(amps[idx])
