"""Cooperative transmit beamforming (Section 5, Algorithm 3).

* :mod:`repro.beamforming.pairwise` — the paper's pairwise null-steering:
  one node of each transmit pair is given the phase offset
  ``delta = pi (2 r cos(alpha) / w - 1)`` so the pair's waves cancel toward
  the primary receiver;
* :mod:`repro.beamforming.pattern` — radiation patterns of the resulting
  two-element array (Figure 8's simulated beamformer curve);
* :mod:`repro.beamforming.multinull` — the N-element generalization: up to
  ``N - 1`` simultaneous nulls via null-space projection (extension beyond
  the paper's pairwise scheme).
"""

from repro.beamforming.multinull import (
    null_steering_weights,
    steering_vector,
    weighted_amplitude,
)
from repro.beamforming.pairwise import (
    NullSteeringPair,
    pair_amplitude,
    phase_delay_for_null,
)
from repro.beamforming.pattern import radiation_pattern, pattern_null_angle

__all__ = [
    "phase_delay_for_null",
    "pair_amplitude",
    "NullSteeringPair",
    "radiation_pattern",
    "pattern_null_angle",
    "steering_vector",
    "null_steering_weights",
    "weighted_amplitude",
]
