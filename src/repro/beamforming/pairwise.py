"""Pairwise null-steering beamforming (Algorithm 3).

The paper's construction: transmit nodes St1 and St2, a distance ``r``
apart, send the same narrowband signal; St1 is given the phase offset

    delta = pi * (2 r cos(alpha) / w - 1)

where ``alpha = angle(Pr, St1, St2)`` and ``w`` is the wavelength, so that
the two waves cancel along the direction to the primary receiver Pr.

Sign convention.  Writing both fields at an observation point P as
``gamma_1 exp(j(delta - k d1)) + gamma_2 exp(-j k d2)`` (``k = 2 pi / w``),
the phase difference is ``Delta = delta - k (d1 - d2)``.  In the far field
``d1 - d2 -> r cos(alpha)``, giving ``Delta -> -pi`` — an exact null for
*every* geometry, which identifies this as the convention the paper
intends.  (With the opposite sign the formula only nulls when
``2 r cos(alpha)/w`` is an integer.)

The paper's received amplitude at a secondary receiver is
``gamma^2 = gamma_1^2 + gamma_2^2 + 2 gamma_1 gamma_2 cos(Delta)`` —
:func:`pair_amplitude`.  :class:`NullSteeringPair` additionally offers the
*exact* finite-distance two-ray computation (via
:class:`repro.channel.multipath.MultipathEnvironment`) and an exact-null
delay for position-aware transmitters, enabling the far-field-approximation
ablation reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.multipath import MultipathEnvironment
from repro.geometry.points import angle_at, distance

__all__ = ["phase_delay_for_null", "pair_amplitude", "NullSteeringPair"]


def phase_delay_for_null(r: float, alpha_rad: float, wavelength: float) -> float:
    """Algorithm 3's phase offset ``delta = pi (2 r cos(alpha) / w - 1)``."""
    if r <= 0.0 or wavelength <= 0.0:
        raise ValueError("r and wavelength must be positive")
    return np.pi * (2.0 * r * np.cos(alpha_rad) / wavelength - 1.0)


def pair_amplitude(gamma1: float, gamma2: float, delta_total: float) -> float:
    """The paper's two-wave amplitude:
    ``gamma = sqrt(g1^2 + g2^2 + 2 g1 g2 cos(Delta))``."""
    if gamma1 < 0.0 or gamma2 < 0.0:
        raise ValueError("amplitudes must be non-negative")
    value = gamma1**2 + gamma2**2 + 2.0 * gamma1 * gamma2 * np.cos(delta_total)
    return float(np.sqrt(max(value, 0.0)))


@dataclass(frozen=True)
class NullSteeringPair:
    """A transmit pair (St1, St2) steering a null toward a primary receiver.

    St1 is the phase-shifted node (as in Figure 5 of the paper).

    Parameters
    ----------
    st1, st2:
        Transmitter coordinates [m].
    wavelength:
        Carrier wavelength ``w`` [m].  Table 1's geometry ("the distance
        between St1 and St2 is 15 m, r = 1/2 w") implies simulation units
        with ``w = 2 r``; the class accepts any combination.
    """

    st1: tuple
    st2: tuple
    wavelength: float

    def __post_init__(self) -> None:
        if self.wavelength <= 0.0:
            raise ValueError("wavelength must be positive")
        if np.allclose(self.st1, self.st2):
            raise ValueError("St1 and St2 must be distinct")

    # ------------------------------------------------------------------ #

    @property
    def spacing(self) -> float:
        """Pair separation ``r`` [m]."""
        return float(distance(np.asarray(self.st1, float), np.asarray(self.st2, float)))

    @property
    def wavenumber(self) -> float:
        """``k = 2 pi / w``."""
        return 2.0 * np.pi / self.wavelength

    def alpha(self, pr_position) -> float:
        """``alpha = angle(Pr, St1, St2)`` — the angle at St1."""
        return float(
            angle_at(np.asarray(self.st1, float), np.asarray(pr_position, float),
                     np.asarray(self.st2, float))
        )

    # ------------------------------------------------------------------ #
    # Delay selection                                                    #
    # ------------------------------------------------------------------ #

    def delay_for_null(self, pr_position, exact: bool = False) -> float:
        """Phase offset for St1 that cancels the pair's field at Pr.

        ``exact=False`` (default) is Algorithm 3's far-field formula;
        ``exact=True`` solves the finite-distance two-ray condition
        ``delta - k (d1 - d2) = -pi`` directly — what a position-aware
        implementation would use, and the ablation baseline for the
        far-field approximation error.
        """
        pr = np.asarray(pr_position, float)
        if exact:
            d1 = float(distance(np.asarray(self.st1, float), pr))
            d2 = float(distance(np.asarray(self.st2, float), pr))
            return float(self.wavenumber * (d1 - d2) - np.pi)
        return phase_delay_for_null(self.spacing, self.alpha(pr), self.wavelength)

    # ------------------------------------------------------------------ #
    # Field evaluation                                                   #
    # ------------------------------------------------------------------ #

    def amplitude_at(
        self,
        point,
        delta: float,
        environment: Optional[MultipathEnvironment] = None,
        amplitudes: tuple = (1.0, 1.0),
    ) -> float:
        """Exact coherent two-transmitter field magnitude at ``point``.

        ``environment`` defaults to pure line of sight; pass an indoor
        environment to reproduce Figure 8's non-zero null.
        """
        env = environment or MultipathEnvironment.line_of_sight()
        tx = np.stack([np.asarray(self.st1, float), np.asarray(self.st2, float)])
        return env.amplitude_at(
            tx,
            np.asarray(point, float),
            self.wavelength,
            tx_phases_rad=np.array([delta, 0.0]),
            tx_amplitudes=np.asarray(amplitudes, float),
        )

    def paper_delta_at(self, point, delta: float) -> float:
        """The total phase difference ``Delta = delta - k (d1 - d2)`` at a point.

        This is the exact counterpart of the paper's
        ``Delta = delta + 2 pi r sin(beta) / w`` approximation; feeding it to
        :func:`pair_amplitude` reproduces the exact line-of-sight amplitude.
        """
        p = np.asarray(point, float)
        d1 = float(distance(np.asarray(self.st1, float), p))
        d2 = float(distance(np.asarray(self.st2, float), p))
        return float(delta - self.wavenumber * (d1 - d2))

    def siso_reference_amplitude(self, point, environment=None) -> float:
        """Amplitude a single transmitter at St1 would produce at ``point``.

        The Table 1 comparison baseline ("1.87 times as strong as that of
        SISO system").
        """
        env = environment or MultipathEnvironment.line_of_sight()
        tx = np.asarray(self.st1, float)[None, :]
        return env.amplitude_at(tx, np.asarray(point, float), self.wavelength)
