"""General multi-null transmit beamforming for N-element virtual arrays.

The paper's Algorithm 3 nulls one primary receiver with hand-built pairs.
Its Section 1 framing, though, allows the interweave system to exploit
"possible angles" generally — with ``N`` cooperating transmitters the
cluster can null up to ``N - 1`` primary receivers *simultaneously* while
steering its gain at the secondary receiver.  This module computes those
weights in closed form:

    maximize   |w^H a(Sr)|      subject to   w^H a(Pr_k) = 0  for all k,
               ||w|| = 1

where ``a(x)`` is the (near-field, exact-distance) steering vector of the
array toward point ``x``.  The optimum is the projection of the desired
steering vector onto the orthogonal complement of the span of the null
steering vectors — a rank-k least-squares projection.

This generalizes the pairwise scheme: for ``N = 2`` and one null the
projection weight reproduces the pair's delta (up to an irrelevant common
phase), a property the test suite verifies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channel.multipath import MultipathEnvironment
from repro.geometry.points import as_points

__all__ = ["steering_vector", "null_steering_weights", "weighted_amplitude"]


def steering_vector(
    tx_positions: np.ndarray, point, wavelength: float
) -> np.ndarray:
    """Exact-distance steering vector of the array toward ``point``.

    Component ``i`` is ``exp(-j k d_i)`` with ``d_i`` the distance from
    transmitter ``i``; transmitting with conjugate weights co-phases the
    contributions at ``point``.
    """
    if wavelength <= 0.0:
        raise ValueError("wavelength must be positive")
    tx = as_points(tx_positions)
    p = np.asarray(point, dtype=float)
    d = np.linalg.norm(tx - p[None, :], axis=1)
    k = 2.0 * np.pi / wavelength
    return np.exp(-1j * k * d)


def null_steering_weights(
    tx_positions: np.ndarray,
    target,
    nulls: Sequence,
    wavelength: float,
) -> np.ndarray:
    """Unit-norm weights maximizing gain at ``target`` with exact nulls.

    Parameters
    ----------
    tx_positions:
        ``(n, 2)`` transmitter coordinates.
    target:
        The secondary receiver to maximize toward.
    nulls:
        Points (up to ``n - 1``) whose received field must vanish.
    wavelength:
        Carrier wavelength.

    Raises
    ------
    ValueError
        If more nulls than degrees of freedom are requested, or the
        projection annihilates the target direction (target collinear
        with the nulled subspace — no gain is achievable).
    """
    tx = as_points(tx_positions)
    n = tx.shape[0]
    null_points = as_points(np.asarray(nulls, dtype=float)) if len(nulls) else np.zeros((0, 2))
    if null_points.shape[0] >= n:
        raise ValueError(
            f"{null_points.shape[0]} nulls exceed the {n - 1} degrees of "
            f"freedom of an {n}-element array"
        )
    a_target = steering_vector(tx, target, wavelength)
    if null_points.shape[0] == 0:
        w = np.conj(a_target)
        return w / np.linalg.norm(w)

    # The transmitted field at a point is sum_i w_i exp(-j k d_i) =
    # a(point)^T w, so each null imposes a(Pr_k)^T w = 0 — i.e. w is
    # orthogonal (complex inner product) to conj(a(Pr_k)).  Project the
    # conjugate-beamforming weight conj(a(Sr)) onto that null space.
    constraints = np.stack(
        [np.conj(steering_vector(tx, p, wavelength)) for p in null_points]
    )  # (k, n): vectors w must be orthogonal to
    q, _ = np.linalg.qr(constraints.T)  # (n, k) orthonormal basis
    projector = np.eye(n) - q @ q.conj().T
    w = projector @ np.conj(a_target)
    norm = np.linalg.norm(w)
    if norm < 1e-12:
        raise ValueError(
            "target direction lies inside the nulled subspace; no gain possible"
        )
    return w / norm


def weighted_amplitude(
    tx_positions: np.ndarray,
    weights: np.ndarray,
    point,
    wavelength: float,
    environment: Optional[MultipathEnvironment] = None,
) -> float:
    """Received amplitude at ``point`` for a weighted array.

    Uses the environment's coherent field computation with the weights'
    phases and magnitudes as per-transmitter offsets/amplitudes.
    """
    tx = as_points(tx_positions)
    w = np.asarray(weights, dtype=complex)
    if w.shape != (tx.shape[0],):
        raise ValueError("one weight per transmitter required")
    env = environment or MultipathEnvironment.line_of_sight()
    return env.amplitude_at(
        tx,
        np.asarray(point, dtype=float),
        wavelength,
        tx_phases_rad=np.angle(w),
        tx_amplitudes=np.abs(w),
    )
