"""Stdlib (urllib) client for the planning service.

One thin, dependency-free wrapper per endpoint; non-2xx responses raise
:class:`ServiceClientError` carrying the HTTP status and the server's JSON
error payload.  The client is deliberately synchronous — it is what a
simulation script, a bench worker thread or a CI smoke test calls.
Streaming endpoints (``/v1/simulate`` and the sweep endpoints under
``Accept: application/x-ndjson``) are exposed as generators yielding one
row dict per NDJSON line (see :meth:`ServiceClient.request_stream`).

Transport failures (connection refused/reset, DNS errors, timeouts, a
response truncated mid-body) never leak raw ``urllib``/``socket``
exceptions: they are re-raised as :class:`ServiceClientError` with the
synthetic status :data:`TRANSPORT_FAILURE_STATUS` (599), so callers handle
exactly one exception type for "the request did not produce a usable
response".

Resilience is opt-in per client: pass a
:class:`~repro.service.retry.RetryPolicy` to retry transport failures and
429/503 responses with jittered exponential backoff (honoring the
server's ``Retry-After`` hint), and/or a
:class:`~repro.service.retry.CircuitBreaker` to fail fast after repeated
transport failures instead of hammering a dead endpoint.  Both sleeps and
clocks are injectable, so retry behavior is testable without waiting.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.error
import urllib.request
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.service.httpio import NDJSON_CONTENT_TYPE
from repro.service.retry import CircuitBreaker, RetryPolicy, default_sleeper
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "ServiceClient",
    "ServiceClientError",
    "CircuitOpenError",
    "TRANSPORT_FAILURE_STATUS",
    "STREAM_FAILURE_STATUS",
    "RETRYABLE_STATUSES",
]

Payload = Dict[str, object]
Point = Tuple[float, float]
Axis = Union[float, Sequence[float]]

#: Synthetic status for failures below HTTP (refused, reset, timeout, ...).
TRANSPORT_FAILURE_STATUS = 599

#: Fallback status for a terminal mid-stream error row carrying none.
STREAM_FAILURE_STATUS = 500

#: Statuses worth retrying: transport failures plus explicit backpressure.
RETRYABLE_STATUSES = frozenset({429, 503, TRANSPORT_FAILURE_STATUS})


class ServiceClientError(Exception):
    """A failed request: HTTP status (or 599) plus the server's payload."""

    def __init__(
        self,
        status: int,
        message: str,
        payload: Optional[Payload] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        check_in_range(status, "status", 100, 599)
        if retry_after_s is not None:
            check_non_negative(retry_after_s, "retry_after_s")
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.message = message
        self.payload: Payload = payload if payload is not None else {}
        #: Parsed ``Retry-After`` header of a 429/503 response (seconds).
        self.retry_after_s = retry_after_s

    @property
    def is_transport_failure(self) -> bool:
        """True when no HTTP response was received at all."""
        return self.status == TRANSPORT_FAILURE_STATUS


class CircuitOpenError(ServiceClientError):
    """The client's circuit breaker refused the call locally."""

    def __init__(self, message: str) -> None:
        super().__init__(503, message)


class ServiceClient:
    """Synchronous JSON client bound to one service address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8123,
        timeout_s: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        check_in_range(port, "port", 1, 65535)
        check_positive(timeout_s, "timeout_s")
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.retry = retry
        self.breaker = breaker
        self._sleep = sleep if sleep is not None else default_sleeper

    # ------------------------------------------------------------------ #
    # Transport                                                          #
    # ------------------------------------------------------------------ #

    def _url(self, path: str) -> str:
        return f"http://{self.host}:{self.port}{path}"

    def request(
        self, method: str, path: str, body: Optional[Payload] = None
    ) -> Payload:
        """One logical request; returns the JSON payload of a 2xx response.

        With a :class:`RetryPolicy` configured, transport failures and
        429/503 responses are retried (every endpoint is a deterministic
        pure function of its body, so replays are always safe); other
        failures raise immediately.  A configured breaker refuses calls
        with :class:`CircuitOpenError` while open.
        """
        attempt = 0
        while True:
            if self.breaker is not None and not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit breaker open after "
                    f"{self.breaker.consecutive_failures} consecutive "
                    f"transport failure(s) to {self.host}:{self.port}"
                )
            try:
                result = self._request_once(method, path, body)
            except ServiceClientError as exc:
                if self.breaker is not None:
                    if exc.is_transport_failure:
                        self.breaker.record_failure()
                    else:  # an HTTP response proves the transport works
                        self.breaker.record_success()
                retries_left = (
                    self.retry is not None
                    and attempt + 1 < self.retry.max_attempts
                    and exc.status in RETRYABLE_STATUSES
                )
                if not retries_left:
                    raise
                assert self.retry is not None
                self._sleep(self.retry.backoff_s(attempt, exc.retry_after_s))
                attempt += 1
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return result

    def _request_once(
        self, method: str, path: str, body: Optional[Payload]
    ) -> Payload:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self._url(path), data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as response:
                return self._decode(response.read(), response.status)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            payload = self._safe_decode(raw)
            detail = str(payload.get("detail", raw.decode("utf-8", "replace")))
            raise ServiceClientError(
                exc.code,
                detail,
                payload,
                retry_after_s=_parse_retry_after(exc.headers.get("Retry-After")),
            ) from None
        except (
            urllib.error.URLError,
            socket.timeout,
            TimeoutError,
            ConnectionError,
            http.client.HTTPException,
        ) as exc:
            raise ServiceClientError(
                TRANSPORT_FAILURE_STATUS,
                f"transport failure contacting {self.host}:{self.port}: "
                f"{type(exc).__name__}: {exc}",
            ) from exc

    @staticmethod
    def _decode(raw: bytes, status: int) -> Payload:
        payload = ServiceClient._safe_decode(raw)
        if not payload and raw.strip():
            raise ServiceClientError(status, "response body is not a JSON object")
        return payload

    @staticmethod
    def _safe_decode(raw: bytes) -> Payload:
        try:
            decoded = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {}
        return decoded if isinstance(decoded, dict) else {}

    # ------------------------------------------------------------------ #
    # NDJSON streaming transport                                         #
    # ------------------------------------------------------------------ #

    def request_stream(
        self, method: str, path: str, body: Optional[Payload] = None
    ) -> Iterator[Payload]:
        """One streaming request: yields each NDJSON row as a dict.

        Sends ``Accept: application/x-ndjson`` and iterates the chunked
        response line by line.  Pre-commit failures (400/404/429/...)
        raise :class:`ServiceClientError` exactly like :meth:`request`.
        Mid-stream server failures arrive as a terminal
        ``{"row": "error", ...}`` line — yielded like any other row, after
        which the stream ends (the server intentionally omits the final
        chunk there, which this client recognises and swallows).  A
        truncation *without* a preceding error row raises
        :class:`ServiceClientError` with status 599.

        Streaming requests bypass the *retry policy* — a generator cannot
        safely replay a half-consumed stream (use :meth:`stream_rows` for
        retried, fully-materialized consumption).  The circuit breaker
        *is* consulted and updated: a truncated or dead stream counts as
        a transport failure exactly like a refused connection.
        """
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit breaker open after "
                f"{self.breaker.consecutive_failures} consecutive "
                f"transport failure(s) to {self.host}:{self.port}"
            )
        data = None
        headers = {"Accept": NDJSON_CONTENT_TYPE}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self._url(path), data=data, headers=headers, method=method
        )
        try:
            response = urllib.request.urlopen(req, timeout=self.timeout_s)
        except urllib.error.HTTPError as exc:
            if self.breaker is not None:  # an HTTP error proves transport works
                self.breaker.record_success()
            raw = exc.read()
            payload = self._safe_decode(raw)
            detail = str(payload.get("detail", raw.decode("utf-8", "replace")))
            raise ServiceClientError(
                exc.code,
                detail,
                payload,
                retry_after_s=_parse_retry_after(exc.headers.get("Retry-After")),
            ) from None
        except (
            urllib.error.URLError,
            socket.timeout,
            TimeoutError,
            ConnectionError,
            http.client.HTTPException,
        ) as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise ServiceClientError(
                TRANSPORT_FAILURE_STATUS,
                f"transport failure contacting {self.host}:{self.port}: "
                f"{type(exc).__name__}: {exc}",
            ) from exc
        return self._iter_ndjson(response)

    def _iter_ndjson(
        self, response: http.client.HTTPResponse
    ) -> Iterator[Payload]:
        saw_error = False
        rows = 0
        try:
            with response:
                for raw in response:
                    line = raw.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError as exc:
                        self._record_stream_failure()
                        raise ServiceClientError(
                            TRANSPORT_FAILURE_STATUS,
                            f"undecodable NDJSON line: {line[:200]!r}",
                        ) from exc
                    if not isinstance(row, dict):
                        self._record_stream_failure()
                        raise ServiceClientError(
                            TRANSPORT_FAILURE_STATUS,
                            f"NDJSON line is not an object: {line[:200]!r}",
                        )
                    if row.get("row") == "error":
                        saw_error = True
                    rows += 1
                    yield row
        except (
            http.client.HTTPException,
            ConnectionError,
            socket.timeout,
            TimeoutError,
        ) as exc:
            if saw_error:
                # The missing terminal chunk after an error row is the
                # protocol's failure signal, not a transport fault — the
                # server delivered a structured failure, so the transport
                # itself proved healthy.
                if self.breaker is not None:
                    self.breaker.record_success()
                return
            self._record_stream_failure()
            raise ServiceClientError(
                TRANSPORT_FAILURE_STATUS,
                f"stream truncated: {type(exc).__name__}: {exc}",
            ) from exc
        if rows == 0:
            # http.client reads "chunked headers, then close" as a clean
            # empty body, but every stream this service emits carries at
            # least one line (the summary or ``done`` row) — zero rows can
            # only mean the connection died before the first chunk.
            self._record_stream_failure()
            raise ServiceClientError(
                TRANSPORT_FAILURE_STATUS,
                "stream truncated: connection closed before the first row",
            )
        if self.breaker is not None:
            self.breaker.record_success()

    def _record_stream_failure(self) -> None:
        """Breaker accounting: a truncated stream is a transport failure."""
        if self.breaker is not None:
            self.breaker.record_failure()

    def stream_rows(
        self, method: str, path: str, body: Optional[Payload] = None
    ) -> List[Payload]:
        """One streaming request, fully consumed, with retry support.

        Materializes the whole NDJSON stream into a list — unlike
        :meth:`request_stream`, each attempt is consumed to completion,
        which makes retrying safe.  Three failure shapes are unified into
        :class:`ServiceClientError` and (with a :class:`RetryPolicy`)
        retried when their status is retryable:

        * pre-commit HTTP errors (400/404/429/...), exactly as
          :meth:`request`;
        * client-detected truncation — status 599, a transport failure;
        * a terminal ``{"row": "error"}`` line, raised with the status
          the row carries (e.g. mid-stream 429 backpressure with its
          in-body ``retry_after_s`` hint; :data:`STREAM_FAILURE_STATUS`
          when absent).

        Every streamed endpoint is a deterministic pure function of its
        body, so a retried stream replays byte-identically — from the
        server's result cache when one is configured.
        """
        attempt = 0
        while True:
            try:
                return self._stream_rows_once(method, path, body)
            except CircuitOpenError:
                raise
            except ServiceClientError as exc:
                retries_left = (
                    self.retry is not None
                    and attempt + 1 < self.retry.max_attempts
                    and exc.status in RETRYABLE_STATUSES
                )
                if not retries_left:
                    raise
                assert self.retry is not None
                self._sleep(self.retry.backoff_s(attempt, exc.retry_after_s))
                attempt += 1

    def _stream_rows_once(
        self, method: str, path: str, body: Optional[Payload]
    ) -> List[Payload]:
        """Consume one stream attempt; a terminal error row raises."""
        rows = list(self.request_stream(method, path, body))
        last = rows[-1] if rows else None
        if isinstance(last, dict) and last.get("row") == "error":
            status = last.get("status")
            retry_after = last.get("retry_after_s")
            raise ServiceClientError(
                status
                if isinstance(status, int) and not isinstance(status, bool)
                else STREAM_FAILURE_STATUS,
                str(last.get("detail", last.get("error", "stream failed"))),
                last,
                retry_after_s=float(retry_after)
                if isinstance(retry_after, (int, float))
                and not isinstance(retry_after, bool)
                else None,
            )
        return rows

    # ------------------------------------------------------------------ #
    # Endpoints                                                          #
    # ------------------------------------------------------------------ #

    def healthz(self) -> Payload:
        """``GET /healthz`` — readiness probe: ``ok``/``degraded``/``draining``."""
        return self.request("GET", "/healthz")

    def metrics_snapshot(self) -> Payload:
        """``GET /metrics`` — the full server counter snapshot."""
        return self.request("GET", "/metrics")

    def ebar(
        self,
        p: float,
        b: int,
        mt: int,
        mr: int,
        solver: str = "table",
        convention: Optional[str] = None,
    ) -> Payload:
        """``POST /v1/ebar`` — required received energy per bit ē_b.

        ``solver="table"`` snaps ``p`` to the precomputed grid (fast,
        cached, coalesced); ``solver="exact"`` runs the root solve in the
        worker pool.
        """
        body: Payload = {"p": p, "b": b, "mt": mt, "mr": mr, "solver": solver}
        if convention is not None:
            body["convention"] = convention
        return self.request("POST", "/v1/ebar", body)

    def overlay_feasible(
        self,
        d1: Axis,
        m: int,
        bandwidth: float,
        p_direct: Optional[float] = None,
        p_relay: Optional[float] = None,
        convention: Optional[str] = None,
    ) -> Payload:
        """``POST /v1/overlay/feasible`` — Algorithm 1 distance analysis.

        ``d1`` may be a scalar (coalesced) or a sequence (pooled sweep).
        """
        body = _overlay_body(d1, m, bandwidth, p_direct, p_relay, convention)
        return self.request("POST", "/v1/overlay/feasible", body)

    def overlay_feasible_stream(
        self,
        d1: Sequence[float],
        m: int,
        bandwidth: float,
        p_direct: Optional[float] = None,
        p_relay: Optional[float] = None,
        convention: Optional[str] = None,
    ) -> Iterator[Payload]:
        """Streaming ``POST /v1/overlay/feasible``: one row dict per point.

        Rows arrive as each server-side segment completes; the stream
        ends with a ``{"done": true, "count": N}`` line.  Row values are
        identical to the buffered :meth:`overlay_feasible` response.
        """
        body = _overlay_body(d1, m, bandwidth, p_direct, p_relay, convention)
        return self.request_stream("POST", "/v1/overlay/feasible", body)

    def underlay_energy(
        self,
        p: float,
        mt: int,
        mr: int,
        d: float,
        distance: Axis,
        bandwidth: float,
        convention: Optional[str] = None,
    ) -> Payload:
        """``POST /v1/underlay/energy`` — Algorithm 2 PA-energy rows.

        ``distance`` may be a scalar (coalesced) or a sequence (pooled
        sweep).
        """
        body = _underlay_body(p, mt, mr, d, distance, bandwidth, convention)
        return self.request("POST", "/v1/underlay/energy", body)

    def underlay_energy_stream(
        self,
        p: float,
        mt: int,
        mr: int,
        d: float,
        distance: Sequence[float],
        bandwidth: float,
        convention: Optional[str] = None,
    ) -> Iterator[Payload]:
        """Streaming ``POST /v1/underlay/energy``: one row dict per point.

        Rows arrive as each server-side segment completes; the stream
        ends with a ``{"done": true, "count": N}`` line.  Row values are
        identical to the buffered :meth:`underlay_energy` response.
        """
        body = _underlay_body(p, mt, mr, d, distance, bandwidth, convention)
        return self.request_stream("POST", "/v1/underlay/energy", body)

    def simulate(self, scenario: Payload) -> Payload:
        """Buffered ``POST /v1/simulate`` — the whole scenario at once.

        ``scenario`` is a :func:`repro.scenario.scenario_from_mapping`
        style mapping; the response carries every snapshot under
        ``rows`` plus the terminal ``summary`` row (with the replay
        digest) and ``count``.
        """
        return self.request("POST", "/v1/simulate", scenario)

    def simulate_stream(self, scenario: Payload) -> Iterator[Payload]:
        """Streaming ``POST /v1/simulate``: snapshots as they happen.

        Yields each periodic snapshot row while the scenario runs in a
        dedicated server-side process, ending with the ``summary`` row
        whose ``digest`` commits to every preceding snapshot — two
        same-seed streams are byte-identical on the wire.
        """
        return self.request_stream("POST", "/v1/simulate", scenario)

    def interweave_pattern(
        self,
        st1: Point,
        st2: Point,
        wavelength: float,
        point: Union[Point, Sequence[Point]],
        delta: Optional[float] = None,
        pr: Optional[Point] = None,
        exact_null: bool = False,
        amplitudes: Optional[Point] = None,
        environment: Optional[Payload] = None,
    ) -> Payload:
        """Sample the pairwise beam pattern.

        ``point`` may be one ``(x, y)`` pair (coalesced-lookup path) or a
        sequence of pairs (pooled sweep); a length-one *sequence of pairs*
        still takes the sweep path.
        """
        one_point = len(point) == 2 and not isinstance(point[0], (list, tuple))
        body: Payload = {"st1": st1, "st2": st2, "wavelength": wavelength}
        if one_point:
            body["point"] = point
        else:
            body["points"] = point
        if delta is not None:
            body["delta"] = delta
        if pr is not None:
            body["pr"] = pr
        if exact_null:
            body["exact_null"] = True
        if amplitudes is not None:
            body["amplitudes"] = amplitudes
        if environment is not None:
            body["environment"] = environment
        return self.request("POST", "/v1/interweave/pattern", body)


def _overlay_body(
    d1: Axis,
    m: int,
    bandwidth: float,
    p_direct: Optional[float],
    p_relay: Optional[float],
    convention: Optional[str],
) -> Payload:
    body: Payload = {"d1": d1, "m": m, "bandwidth": bandwidth}
    if p_direct is not None:
        body["p_direct"] = p_direct
    if p_relay is not None:
        body["p_relay"] = p_relay
    if convention is not None:
        body["convention"] = convention
    return body


def _underlay_body(
    p: float,
    mt: int,
    mr: int,
    d: float,
    distance: Axis,
    bandwidth: float,
    convention: Optional[str],
) -> Payload:
    body: Payload = {
        "p": p,
        "mt": mt,
        "mr": mr,
        "d": d,
        "distance": distance,
        "bandwidth": bandwidth,
    }
    if convention is not None:
        body["convention"] = convention
    return body


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Delta-seconds form of ``Retry-After`` (HTTP-dates are ignored)."""
    if value is None:
        return None
    try:
        parsed = float(value.strip())
    except ValueError:
        return None
    return parsed if parsed >= 0.0 else None
