"""Stdlib (urllib) client for the planning service.

One thin, dependency-free wrapper per endpoint; non-2xx responses raise
:class:`ServiceClientError` carrying the HTTP status and the server's JSON
error payload.  The client is deliberately synchronous — it is what a
simulation script, a bench worker thread or a CI smoke test calls.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.utils.validation import check_in_range, check_positive

__all__ = ["ServiceClient", "ServiceClientError"]

Payload = Dict[str, object]
Point = Tuple[float, float]
Axis = Union[float, Sequence[float]]


class ServiceClientError(Exception):
    """A non-2xx response: HTTP status plus the server's error payload."""

    def __init__(
        self, status: int, message: str, payload: Optional[Payload] = None
    ) -> None:
        check_in_range(status, "status", 100, 599)
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.message = message
        self.payload: Payload = payload if payload is not None else {}


class ServiceClient:
    """Synchronous JSON client bound to one service address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8123, timeout_s: float = 30.0
    ) -> None:
        check_in_range(port, "port", 1, 65535)
        check_positive(timeout_s, "timeout_s")
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------ #
    # Transport                                                          #
    # ------------------------------------------------------------------ #

    def _url(self, path: str) -> str:
        return f"http://{self.host}:{self.port}{path}"

    def request(
        self, method: str, path: str, body: Optional[Payload] = None
    ) -> Payload:
        """One request; returns the decoded JSON payload of a 2xx response."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self._url(path), data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as response:
                return self._decode(response.read(), response.status)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            payload = self._safe_decode(raw)
            detail = str(payload.get("detail", raw.decode("utf-8", "replace")))
            raise ServiceClientError(exc.code, detail, payload) from None

    @staticmethod
    def _decode(raw: bytes, status: int) -> Payload:
        payload = ServiceClient._safe_decode(raw)
        if not payload and raw.strip():
            raise ServiceClientError(status, "response body is not a JSON object")
        return payload

    @staticmethod
    def _safe_decode(raw: bytes) -> Payload:
        try:
            decoded = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {}
        return decoded if isinstance(decoded, dict) else {}

    # ------------------------------------------------------------------ #
    # Endpoints                                                          #
    # ------------------------------------------------------------------ #

    def healthz(self) -> Payload:
        """``GET /healthz`` — liveness probe, ``{"status": "ok"}``."""
        return self.request("GET", "/healthz")

    def metrics_snapshot(self) -> Payload:
        """``GET /metrics`` — the full server counter snapshot."""
        return self.request("GET", "/metrics")

    def ebar(
        self,
        p: float,
        b: int,
        mt: int,
        mr: int,
        solver: str = "table",
        convention: Optional[str] = None,
    ) -> Payload:
        """``POST /v1/ebar`` — required received energy per bit ē_b.

        ``solver="table"`` snaps ``p`` to the precomputed grid (fast,
        cached, coalesced); ``solver="exact"`` runs the root solve in the
        worker pool.
        """
        body: Payload = {"p": p, "b": b, "mt": mt, "mr": mr, "solver": solver}
        if convention is not None:
            body["convention"] = convention
        return self.request("POST", "/v1/ebar", body)

    def overlay_feasible(
        self,
        d1: Axis,
        m: int,
        bandwidth: float,
        p_direct: Optional[float] = None,
        p_relay: Optional[float] = None,
        convention: Optional[str] = None,
    ) -> Payload:
        """``POST /v1/overlay/feasible`` — Algorithm 1 distance analysis.

        ``d1`` may be a scalar (coalesced) or a sequence (pooled sweep).
        """
        body: Payload = {"d1": d1, "m": m, "bandwidth": bandwidth}
        if p_direct is not None:
            body["p_direct"] = p_direct
        if p_relay is not None:
            body["p_relay"] = p_relay
        if convention is not None:
            body["convention"] = convention
        return self.request("POST", "/v1/overlay/feasible", body)

    def underlay_energy(
        self,
        p: float,
        mt: int,
        mr: int,
        d: float,
        distance: Axis,
        bandwidth: float,
        convention: Optional[str] = None,
    ) -> Payload:
        """``POST /v1/underlay/energy`` — Algorithm 2 PA-energy rows.

        ``distance`` may be a scalar (coalesced) or a sequence (pooled
        sweep).
        """
        body: Payload = {
            "p": p,
            "mt": mt,
            "mr": mr,
            "d": d,
            "distance": distance,
            "bandwidth": bandwidth,
        }
        if convention is not None:
            body["convention"] = convention
        return self.request("POST", "/v1/underlay/energy", body)

    def interweave_pattern(
        self,
        st1: Point,
        st2: Point,
        wavelength: float,
        point: Union[Point, Sequence[Point]],
        delta: Optional[float] = None,
        pr: Optional[Point] = None,
        exact_null: bool = False,
        amplitudes: Optional[Point] = None,
        environment: Optional[Payload] = None,
    ) -> Payload:
        """Sample the pairwise beam pattern.

        ``point`` may be one ``(x, y)`` pair (coalesced-lookup path) or a
        sequence of pairs (pooled sweep); a length-one *sequence of pairs*
        still takes the sweep path.
        """
        one_point = len(point) == 2 and not isinstance(point[0], (list, tuple))
        body: Payload = {"st1": st1, "st2": st2, "wavelength": wavelength}
        if one_point:
            body["point"] = point
        else:
            body["points"] = point
        if delta is not None:
            body["delta"] = delta
        if pr is not None:
            body["pr"] = pr
        if exact_null:
            body["exact_null"] = True
        if amplitudes is not None:
            body["amplitudes"] = amplitudes
        if environment is not None:
            body["environment"] = environment
        return self.request("POST", "/v1/interweave/pattern", body)
