"""Command-line entry point: ``repro-service`` / ``python -m repro.service``.

Usage::

    repro-service [--host H] [--port P] [--workers N] [--coalesce-ms MS]
                  [--queue-limit N] [--max-coalesce N] [--seed N]
                  [--table-convention paper|diversity_only]
                  [--request-timeout-ms MS] [--max-pool-restarts N]
                  [--retry-after-s S]
                  [--drain-timeout-s S] [--no-request-log] [--quiet]

The server announces its bound address as a ``{"event": "listening"}`` JSON
line on stdout (``--port 0`` binds an ephemeral port), logs one structured
JSON line per request to stderr, and drains gracefully on SIGTERM/SIGINT
(exit code 0).
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import sys
from typing import List, Optional

from repro.energy.ebar import CONVENTIONS
from repro.service.config import DEFAULT_PORT, ServiceConfig
from repro.service.server import serve

__all__ = ["main", "build_config"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Planning service for the cooperative MIMO cognitive-radio "
        "reproduction: e_bar_b lookups, overlay feasibility, underlay energy "
        "and interweave beam patterns over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port; 0 binds an ephemeral port and announces it on stdout",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for sweep requests; 0 runs sweeps inline",
    )
    parser.add_argument(
        "--coalesce-ms",
        type=float,
        default=2.0,
        help="request-coalescing window in milliseconds",
    )
    parser.add_argument(
        "--max-coalesce",
        type=int,
        default=64,
        help="maximum merged requests per coalesced batch",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="maximum in-flight sweep tasks before requests get 429",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed for per-task SeedSequence.spawn streams",
    )
    parser.add_argument(
        "--table-convention",
        choices=list(CONVENTIONS),
        default="paper",
        help="e_bar_b convention of the preloaded lookup table",
    )
    parser.add_argument(
        "--max-sweep-points",
        type=int,
        default=4096,
        help="per-request cap on sweep axis length",
    )
    parser.add_argument(
        "--request-timeout-ms",
        type=float,
        default=None,
        help="per-request deadline; exceeding it answers 504 (default: none)",
    )
    parser.add_argument(
        "--max-pool-restarts",
        type=int,
        default=3,
        help="broken worker-pool restarts before degrading to inline sweeps",
    )
    parser.add_argument(
        "--retry-after-s",
        type=float,
        default=1.0,
        help="Retry-After hint sent on 429 backpressure responses",
    )
    parser.add_argument(
        "--drain-timeout-s",
        type=float,
        default=5.0,
        help="graceful-shutdown budget for in-flight requests",
    )
    parser.add_argument(
        "--no-request-log",
        action="store_true",
        help="disable per-request structured log lines",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="log warnings and errors only"
    )
    return parser


def build_config(args: argparse.Namespace) -> ServiceConfig:
    """Map parsed CLI arguments onto a :class:`ServiceConfig`."""
    return ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        coalesce_ms=args.coalesce_ms,
        max_coalesce=args.max_coalesce,
        queue_limit=args.queue_limit,
        seed=args.seed,
        table_convention=args.table_convention,
        max_sweep_points=args.max_sweep_points,
        drain_timeout_s=args.drain_timeout_s,
        request_log=not args.no_request_log,
        request_timeout_ms=args.request_timeout_ms,
        max_pool_restarts=args.max_pool_restarts,
        retry_after_s=args.retry_after_s,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        config = build_config(args)
    except ValueError as exc:
        print(f"repro-service: {exc}", file=sys.stderr)
        return 2
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.WARNING if args.quiet else logging.INFO,
        format="%(message)s",
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
