"""Command-line entry point: ``repro-service`` / ``python -m repro.service``.

Usage::

    repro-service [--host H] [--port P] [--workers N|auto] [--shards N|auto]
                  [--coalesce-ms MS] [--queue-limit N] [--max-coalesce N]
                  [--seed N] [--table-convention paper|diversity_only]
                  [--request-timeout-ms MS] [--max-pool-restarts N]
                  [--max-shard-restarts N] [--retry-after-s S]
                  [--drain-timeout-s S] [--admin-port P]
                  [--max-sims N] [--max-sim-nodes N]
                  [--stream-segment-points N] [--sim-stall-timeout-ms MS]
                  [--chaos-admin]
                  [--no-result-cache] [--result-cache-dir DIR]
                  [--no-request-log] [--quiet]

The server announces its bound address as a ``{"event": "listening"}`` JSON
line on stdout (``--port 0`` binds an ephemeral port), logs one structured
JSON line per request to stderr, and drains gracefully on SIGTERM/SIGINT
(exit code 0).

``--shards 2`` (or more, or ``auto`` = one per available CPU) runs the
:class:`repro.service.shard.ShardSupervisor` instead of a single server:
N server processes share the port via ``SO_REUSEPORT`` (or an inherited
listener where unsupported), crashed shards are replaced from a restart
budget, and the supervisor's announced ``admin_port`` serves aggregated
``/healthz`` and ``/metrics``.  ``auto`` counts *available* CPUs (cgroup /
affinity aware) through :func:`repro.utils.sysinfo.available_cpu_count` —
never raw ``os.cpu_count()``.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import sys
from typing import Callable, List, Optional

from repro.energy.ebar import CONVENTIONS
from repro.service.config import DEFAULT_PORT, ServiceConfig
from repro.service.server import serve
from repro.service.shard import ShardSupervisor
from repro.utils.sysinfo import default_shard_count, default_worker_count
from repro.utils.validation import check_positive_int

__all__ = ["main", "build_config", "resolve_count"]


def resolve_count(value: str, name: str, auto: Callable[[], int]) -> int:
    """Parse an ``N``-or-``auto`` CLI count (``auto`` asks ``sysinfo``)."""
    if value.strip().lower() == "auto":
        return auto()
    try:
        count = int(value)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer or 'auto', got {value!r}"
        ) from None
    return count


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Planning service for the cooperative MIMO cognitive-radio "
        "reproduction: e_bar_b lookups, overlay feasibility, underlay energy "
        "and interweave beam patterns over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port; 0 binds an ephemeral port and announces it on stdout",
    )
    parser.add_argument(
        "--workers",
        default="2",
        help="worker processes for sweep requests; 0 runs sweeps inline; "
        "'auto' sizes to the available CPUs minus one",
    )
    parser.add_argument(
        "--shards",
        default="1",
        help="server processes sharing the port; >1 runs the shard "
        "supervisor; 'auto' sizes to the available CPUs",
    )
    parser.add_argument(
        "--max-shard-restarts",
        type=int,
        default=3,
        help="crashed-shard replacements before the fleet degrades",
    )
    parser.add_argument(
        "--coalesce-ms",
        type=float,
        default=2.0,
        help="request-coalescing window in milliseconds",
    )
    parser.add_argument(
        "--max-coalesce",
        type=int,
        default=64,
        help="maximum merged requests per coalesced batch",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="maximum in-flight sweep tasks before requests get 429",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed for per-task SeedSequence.spawn streams",
    )
    parser.add_argument(
        "--table-convention",
        choices=list(CONVENTIONS),
        default="paper",
        help="e_bar_b convention of the preloaded lookup table",
    )
    parser.add_argument(
        "--max-sweep-points",
        type=int,
        default=4096,
        help="per-request cap on sweep axis length",
    )
    parser.add_argument(
        "--request-timeout-ms",
        type=float,
        default=None,
        help="per-request deadline; exceeding it answers 504 (default: none)",
    )
    parser.add_argument(
        "--max-pool-restarts",
        type=int,
        default=3,
        help="broken worker-pool restarts before degrading to inline sweeps",
    )
    parser.add_argument(
        "--retry-after-s",
        type=float,
        default=1.0,
        help="Retry-After hint sent on 429 backpressure responses",
    )
    parser.add_argument(
        "--drain-timeout-s",
        type=float,
        default=5.0,
        help="graceful-shutdown budget for in-flight requests",
    )
    parser.add_argument(
        "--admin-port",
        type=int,
        default=None,
        help="also serve /healthz and /metrics on this private loopback "
        "port (0 = ephemeral, announced as admin_port)",
    )
    parser.add_argument(
        "--reuse-port",
        action="store_true",
        help="bind with SO_REUSEPORT so sibling processes can share the port",
    )
    parser.add_argument(
        "--listen-fd",
        type=int,
        default=None,
        help="adopt an inherited listening socket on this file descriptor "
        "(shard-supervisor fallback; overrides --host/--port binding)",
    )
    parser.add_argument(
        "--shard-index",
        type=int,
        default=None,
        help="this server's slot in a shard fleet (set by the supervisor)",
    )
    parser.add_argument(
        "--max-sims",
        type=int,
        default=2,
        help="concurrently streaming /v1/simulate runs before requests get 429",
    )
    parser.add_argument(
        "--max-sim-nodes",
        type=int,
        default=5000,
        help="per-request cap on a scenario's starting node count",
    )
    parser.add_argument(
        "--stream-segment-points",
        type=int,
        default=512,
        help="axis points per pool task when streaming sweep rows as NDJSON",
    )
    parser.add_argument(
        "--sim-stall-timeout-ms",
        type=float,
        default=10000.0,
        help="per-row stall deadline for streamed /v1/simulate; a child "
        "producing no row for this long is killed and the stream ends "
        "with a terminal error row (0 disables)",
    )
    parser.add_argument(
        "--chaos-admin",
        action="store_true",
        help="allow POST /chaos/kill_shard on the shard supervisor's "
        "loopback admin listener (load-generator fault plans; off by default)",
    )
    parser.add_argument(
        "--result-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve repeated POST requests from the persistent request-hash "
        "result cache (REPRO_NO_CACHE=1 force-disables it)",
    )
    parser.add_argument(
        "--result-cache-dir",
        default=None,
        help="override the result-cache directory",
    )
    parser.add_argument(
        "--no-request-log",
        action="store_true",
        help="disable per-request structured log lines",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="log warnings and errors only"
    )
    return parser


def build_config(args: argparse.Namespace) -> ServiceConfig:
    """Map parsed CLI arguments onto a :class:`ServiceConfig`."""
    return ServiceConfig(
        host=args.host,
        port=args.port,
        workers=resolve_count(args.workers, "workers", default_worker_count),
        coalesce_ms=args.coalesce_ms,
        max_coalesce=args.max_coalesce,
        queue_limit=args.queue_limit,
        seed=args.seed,
        table_convention=args.table_convention,
        max_sweep_points=args.max_sweep_points,
        drain_timeout_s=args.drain_timeout_s,
        request_log=not args.no_request_log,
        request_timeout_ms=args.request_timeout_ms,
        max_pool_restarts=args.max_pool_restarts,
        retry_after_s=args.retry_after_s,
        reuse_port=args.reuse_port,
        listen_fd=args.listen_fd,
        admin_port=args.admin_port,
        shard_index=args.shard_index,
        result_cache=args.result_cache,
        result_cache_dir=args.result_cache_dir,
        max_sims=args.max_sims,
        max_sim_nodes=args.max_sim_nodes,
        stream_segment_points=args.stream_segment_points,
        sim_stall_timeout_ms=(
            None if args.sim_stall_timeout_ms == 0 else args.sim_stall_timeout_ms
        ),
        chaos_admin=args.chaos_admin,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        config = build_config(args)
        shards = check_positive_int(
            resolve_count(args.shards, "shards", default_shard_count), "shards"
        )
    except ValueError as exc:
        print(f"repro-service: {exc}", file=sys.stderr)
        return 2
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.WARNING if args.quiet else logging.INFO,
        format="%(message)s",
    )
    try:
        if shards > 1:
            supervisor = ShardSupervisor(
                config, shards, max_shard_restarts=args.max_shard_restarts
            )
            asyncio.run(supervisor.run())
        else:
            asyncio.run(serve(config))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
