"""Request schemas: JSON body -> validated, frozen, hashable dataclasses.

Each endpoint has one ``parse_*`` function that turns the decoded JSON
value into a frozen request dataclass, raising
:class:`repro.service.errors.BadRequestError` with a field-naming message
on any malformed input.  The dataclasses re-validate their own fields in
``__post_init__`` through :mod:`repro.utils.validation`, so a request
object is well-formed no matter how it was built.

The request objects double as *coalescing group keys*: stripping the swept
axis (``dataclasses.replace(req, d1=())`` and friends) yields a hashable
value identifying everything a batch kernel shares across merged requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.energy.ebar import CONVENTIONS
from repro.service.errors import BadRequestError
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "EbarRequest",
    "OverlayRequest",
    "UnderlayRequest",
    "InterweaveRequest",
    "EnvironmentSpec",
    "parse_ebar_request",
    "parse_overlay_request",
    "parse_underlay_request",
    "parse_interweave_request",
    "error_payload",
    "EBAR_SOLVERS",
]

#: Accepted values of the ``/v1/ebar`` ``solver`` field.
EBAR_SOLVERS = ("table", "exact")

Point = Tuple[float, float]


# --------------------------------------------------------------------- #
# JSON extraction helpers (every failure is a named-field 400)          #
# --------------------------------------------------------------------- #


def _require_object(data: object) -> Mapping[str, object]:
    if not isinstance(data, Mapping):
        raise BadRequestError("request body must be a JSON object")
    return data


def _get(data: Mapping[str, object], key: str) -> object:
    if key not in data:
        raise BadRequestError(f"missing required field {key!r}")
    return data[key]


def _as_float(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"{name} must be a number")
    return float(value)


def _as_int(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"{name} must be an integer")
    return int(value)


def _as_bool(value: object, name: str) -> bool:
    if not isinstance(value, bool):
        raise BadRequestError(f"{name} must be a boolean")
    return value


def _as_str(value: object, name: str) -> str:
    if not isinstance(value, str):
        raise BadRequestError(f"{name} must be a string")
    return value


def _as_point(value: object, name: str) -> Point:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or any(isinstance(v, bool) or not isinstance(v, (int, float)) for v in value)
    ):
        raise BadRequestError(f"{name} must be an [x, y] pair of numbers")
    return (float(value[0]), float(value[1]))


def _axis(
    data: Mapping[str, object],
    scalar_key: str,
    vector_key: str,
    max_points: int,
) -> Tuple[Tuple[float, ...], bool]:
    """One swept axis given either as a scalar or as a list.

    Returns ``(values, scalar)`` where ``scalar`` records which spelling the
    client used (scalar requests are coalesced; vector requests are pooled).
    """
    has_scalar = scalar_key in data
    has_vector = vector_key != scalar_key and vector_key in data
    if has_scalar and has_vector:
        raise BadRequestError(f"give either {scalar_key!r} or {vector_key!r}, not both")
    if has_scalar:
        value = data[scalar_key]
        if isinstance(value, (list, tuple)):
            values = tuple(
                _as_float(v, f"{scalar_key}[{j}]") for j, v in enumerate(value)
            )
            if not values:
                raise BadRequestError(f"{scalar_key} must be non-empty")
            if len(values) > max_points:
                raise BadRequestError(
                    f"{scalar_key} has {len(values)} points; "
                    f"the per-request limit is {max_points}"
                )
            return values, False
        return (_as_float(value, scalar_key),), True
    if has_vector:
        return _axis(data, vector_key, vector_key, max_points)
    raise BadRequestError(f"missing required field {scalar_key!r}")


def _check_convention(convention: str) -> str:
    if convention not in CONVENTIONS:
        raise BadRequestError(f"convention must be one of {CONVENTIONS}")
    return convention


# --------------------------------------------------------------------- #
# /v1/ebar                                                              #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class EbarRequest:
    """One ``e_bar_b`` query: table lookup (default) or exact re-solve."""

    p: float
    b: int
    mt: int
    mr: int
    solver: str = "table"
    convention: str = "paper"

    def __post_init__(self) -> None:
        check_probability(self.p, "p")
        check_positive_int(self.b, "b")
        check_positive_int(self.mt, "mt")
        check_positive_int(self.mr, "mr")
        if self.solver not in EBAR_SOLVERS:
            raise ValueError(f"solver must be one of {EBAR_SOLVERS}")
        if self.convention not in CONVENTIONS:
            raise ValueError(f"convention must be one of {CONVENTIONS}")


def parse_ebar_request(data: object) -> EbarRequest:
    body = _require_object(data)
    solver = _as_str(body.get("solver", "table"), "solver")
    if solver not in EBAR_SOLVERS:
        raise BadRequestError(f"solver must be one of {EBAR_SOLVERS}")
    convention = _check_convention(
        _as_str(body.get("convention", "paper"), "convention")
    )
    try:
        return EbarRequest(
            p=_as_float(_get(body, "p"), "p"),
            b=_as_int(_get(body, "b"), "b"),
            mt=_as_int(_get(body, "mt"), "mt"),
            mr=_as_int(_get(body, "mr"), "mr"),
            solver=solver,
            convention=convention,
        )
    except (ValueError, TypeError) as exc:
        raise BadRequestError(str(exc)) from exc


# --------------------------------------------------------------------- #
# /v1/overlay/feasible                                                  #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class OverlayRequest:
    """Algorithm 1 distance/energy feasibility over a D1 axis.

    Defaults mirror Figure 6: direct BER 0.005, relayed BER 0.0005, and the
    ``diversity_only`` table convention the paper's own Figure 6 numbers
    imply (see EXPERIMENTS.md).
    """

    d1: Tuple[float, ...]
    m: int
    bandwidth: float
    p_direct: float = 0.005
    p_relay: float = 0.0005
    convention: str = "diversity_only"
    scalar: bool = False

    def __post_init__(self) -> None:
        if not self.d1:
            raise ValueError("d1 must be non-empty")
        for value in self.d1:
            check_positive(value, "d1")
        check_positive_int(self.m, "m")
        check_positive(self.bandwidth, "bandwidth")
        check_probability(self.p_direct, "p_direct")
        check_probability(self.p_relay, "p_relay")
        if self.convention not in CONVENTIONS:
            raise ValueError(f"convention must be one of {CONVENTIONS}")


def parse_overlay_request(data: object, max_points: int = 4096) -> OverlayRequest:
    body = _require_object(data)
    d1, scalar = _axis(body, "d1", "d1_values", max_points)
    try:
        return OverlayRequest(
            d1=d1,
            m=_as_int(_get(body, "m"), "m"),
            bandwidth=_as_float(_get(body, "bandwidth"), "bandwidth"),
            p_direct=_as_float(body.get("p_direct", 0.005), "p_direct"),
            p_relay=_as_float(body.get("p_relay", 0.0005), "p_relay"),
            convention=_check_convention(
                _as_str(body.get("convention", "diversity_only"), "convention")
            ),
            scalar=scalar,
        )
    except (ValueError, TypeError) as exc:
        raise BadRequestError(str(exc)) from exc


# --------------------------------------------------------------------- #
# /v1/underlay/energy                                                   #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class UnderlayRequest:
    """Algorithm 2 PA-energy accounting over a long-haul distance axis."""

    p: float
    mt: int
    mr: int
    d: float
    distances: Tuple[float, ...]
    bandwidth: float
    convention: str = "paper"
    scalar: bool = False

    def __post_init__(self) -> None:
        check_probability(self.p, "p")
        check_positive_int(self.mt, "mt")
        check_positive_int(self.mr, "mr")
        check_positive(self.d, "d")
        if not self.distances:
            raise ValueError("distances must be non-empty")
        for value in self.distances:
            check_positive(value, "distance")
        check_positive(self.bandwidth, "bandwidth")
        if self.convention not in CONVENTIONS:
            raise ValueError(f"convention must be one of {CONVENTIONS}")


def parse_underlay_request(data: object, max_points: int = 4096) -> UnderlayRequest:
    body = _require_object(data)
    distances, scalar = _axis(body, "distance", "distances", max_points)
    try:
        return UnderlayRequest(
            p=_as_float(_get(body, "p"), "p"),
            mt=_as_int(_get(body, "mt"), "mt"),
            mr=_as_int(_get(body, "mr"), "mr"),
            d=_as_float(_get(body, "d"), "d"),
            distances=distances,
            bandwidth=_as_float(_get(body, "bandwidth"), "bandwidth"),
            convention=_check_convention(
                _as_str(body.get("convention", "paper"), "convention")
            ),
            scalar=scalar,
        )
    except (ValueError, TypeError) as exc:
        raise BadRequestError(str(exc)) from exc


# --------------------------------------------------------------------- #
# /v1/interweave/pattern                                                #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class EnvironmentSpec:
    """A :meth:`MultipathEnvironment.random_indoor` construction recipe.

    ``seed=None`` asks the service to assign one from its per-task
    ``SeedSequence.spawn`` stream (echoed back as ``seed_used``).
    """

    n_scatterers: int = 6
    inner_radius_m: float = 1.5
    outer_radius_m: float = 6.0
    echo_amplitude: float = 0.25
    decay: float = 0.75
    center: Point = (0.0, 0.0)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        check_non_negative_int(self.n_scatterers, "n_scatterers")
        check_positive(self.inner_radius_m, "inner_radius_m")
        if self.outer_radius_m <= self.inner_radius_m:
            raise ValueError("outer_radius_m must exceed inner_radius_m")
        check_non_negative(self.echo_amplitude, "echo_amplitude")
        check_in_range(self.decay, "decay", 0.0, 1.0, inclusive=False)
        check_finite(self.center[0], "center[0]")
        check_finite(self.center[1], "center[1]")
        if self.seed is not None:
            check_non_negative_int(self.seed, "seed")


def _parse_environment(value: object) -> Optional[EnvironmentSpec]:
    if value is None:
        return None
    body = _require_object(value)
    seed_raw = body.get("seed")
    try:
        return EnvironmentSpec(
            n_scatterers=_as_int(body.get("n_scatterers", 6), "n_scatterers"),
            inner_radius_m=_as_float(body.get("inner_radius_m", 1.5), "inner_radius_m"),
            outer_radius_m=_as_float(body.get("outer_radius_m", 6.0), "outer_radius_m"),
            echo_amplitude=_as_float(body.get("echo_amplitude", 0.25), "echo_amplitude"),
            decay=_as_float(body.get("decay", 0.75), "decay"),
            center=_as_point(body.get("center", (0.0, 0.0)), "center"),
            seed=None if seed_raw is None else _as_int(seed_raw, "seed"),
        )
    except (ValueError, TypeError) as exc:
        raise BadRequestError(str(exc)) from exc


@dataclass(frozen=True)
class InterweaveRequest:
    """Algorithm 3 pairwise null-steering field samples.

    Exactly one of ``delta`` (an explicit St1 phase offset) or ``pr`` (a
    primary-receiver position to null toward, via the Algorithm 3 formula
    or the exact two-ray condition when ``exact_null``) must be given.
    """

    st1: Point
    st2: Point
    wavelength: float
    points: Tuple[Point, ...]
    delta: Optional[float] = None
    pr: Optional[Point] = None
    exact_null: bool = False
    amplitudes: Point = (1.0, 1.0)
    environment: Optional[EnvironmentSpec] = None
    scalar: bool = False

    def __post_init__(self) -> None:
        check_finite(self.st1[0], "st1[0]")
        check_finite(self.st1[1], "st1[1]")
        check_finite(self.st2[0], "st2[0]")
        check_finite(self.st2[1], "st2[1]")
        if self.st1 == self.st2:
            raise ValueError("st1 and st2 must be distinct")
        check_positive(self.wavelength, "wavelength")
        if not self.points:
            raise ValueError("points must be non-empty")
        for point in self.points:
            check_finite(point[0], "points[..][0]")
            check_finite(point[1], "points[..][1]")
        if (self.delta is None) == (self.pr is None):
            raise ValueError("give exactly one of 'delta' or 'pr'")
        if self.delta is not None:
            check_finite(self.delta, "delta")
        if self.pr is not None:
            check_finite(self.pr[0], "pr[0]")
            check_finite(self.pr[1], "pr[1]")
        check_non_negative(self.amplitudes[0], "amplitudes[0]")
        check_non_negative(self.amplitudes[1], "amplitudes[1]")


def parse_interweave_request(data: object, max_points: int = 4096) -> InterweaveRequest:
    body = _require_object(data)
    if "point" in body and "points" in body:
        raise BadRequestError("give either 'point' or 'points', not both")
    if "point" in body:
        points: Tuple[Point, ...] = (_as_point(body["point"], "point"),)
        scalar = True
    elif "points" in body:
        raw = body["points"]
        if not isinstance(raw, (list, tuple)) or not raw:
            raise BadRequestError("points must be a non-empty list of [x, y] pairs")
        if len(raw) > max_points:
            raise BadRequestError(
                f"points has {len(raw)} entries; the per-request limit is {max_points}"
            )
        points = tuple(_as_point(p, f"points[{j}]") for j, p in enumerate(raw))
        scalar = False
    else:
        raise BadRequestError("missing required field 'point' (or 'points')")
    delta_raw = body.get("delta")
    pr_raw = body.get("pr")
    amplitudes_raw = body.get("amplitudes", (1.0, 1.0))
    try:
        return InterweaveRequest(
            st1=_as_point(_get(body, "st1"), "st1"),
            st2=_as_point(_get(body, "st2"), "st2"),
            wavelength=_as_float(_get(body, "wavelength"), "wavelength"),
            points=points,
            delta=None if delta_raw is None else _as_float(delta_raw, "delta"),
            pr=None if pr_raw is None else _as_point(pr_raw, "pr"),
            exact_null=_as_bool(body.get("exact_null", False), "exact_null"),
            amplitudes=_as_point(amplitudes_raw, "amplitudes"),
            environment=_parse_environment(body.get("environment")),
            scalar=scalar,
        )
    except (ValueError, TypeError) as exc:
        raise BadRequestError(str(exc)) from exc


# --------------------------------------------------------------------- #
# Error bodies                                                          #
# --------------------------------------------------------------------- #


def error_payload(
    status: int,
    error: str,
    detail: str,
    retry_after_s: Optional[float] = None,
) -> Dict[str, object]:
    """The one structured error-body shape every non-2xx response carries.

    ``{"error": <reason>, "detail": <message>, "status": <code>}`` plus an
    optional ``retry_after_s`` hint mirrored from the ``Retry-After``
    header, so clients can recover the full failure context from the body
    alone (e.g. after the header layer has been stripped by a proxy).
    """
    check_in_range(status, "status", 100, 599)
    payload: Dict[str, object] = {
        "error": error,
        "detail": detail,
        "status": int(status),
    }
    if retry_after_s is not None:
        payload["retry_after_s"] = check_non_negative(retry_after_s, "retry_after_s")
    return payload


# Re-exported for the work module's typed signatures.
_ = field
