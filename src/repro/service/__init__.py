"""repro.service — asyncio planning service over the reproduction library.

A stdlib-only HTTP/JSON front end for the paper's three paradigms:

* ``POST /v1/ebar`` — ``e_bar_b`` lookups (coalesced table reads, or exact
  re-solves in the worker pool);
* ``POST /v1/overlay/feasible`` — Algorithm 1 relay feasibility (Figure 6);
* ``POST /v1/underlay/energy`` — Algorithm 2 PA-energy accounting (Figure 7);
* ``POST /v1/interweave/pattern`` — Algorithm 3 null-steered beam patterns
  (Table 1 / Figure 8);
* ``GET /healthz`` and ``GET /metrics``.

Concurrent single-point requests are merged by a request-coalescing
scheduler into one batch-kernel call (bit-identical to the scalar path);
heavy sweeps run in a bounded process pool with 429 backpressure.  See
``docs/serving.md``.
"""

from repro.service.app import ENDPOINTS, PlanningService
from repro.service.client import (
    TRANSPORT_FAILURE_STATUS,
    CircuitOpenError,
    ServiceClient,
    ServiceClientError,
)
from repro.service.coalescer import Coalescer
from repro.service.config import DEFAULT_PORT, ServiceConfig
from repro.service.errors import (
    BadRequestError,
    DeadlineExceededError,
    MethodNotAllowedError,
    NotFoundError,
    OverloadedError,
    PayloadTooLargeError,
    ServiceError,
)
from repro.service.faults import FaultInjector
from repro.service.metrics import LatencyHistogram, Metrics
from repro.service.pool import RestartBudget, WorkerPool
from repro.service.rescache import ResultCache, canonical_digest
from repro.service.retry import CircuitBreaker, RetryPolicy
from repro.service.server import ServiceServer, serve
from repro.service.shard import ShardSupervisor, aggregate_snapshots
from repro.service.testing import ThreadedServer

__all__ = [
    "ENDPOINTS",
    "PlanningService",
    "ServiceClient",
    "ServiceClientError",
    "CircuitOpenError",
    "TRANSPORT_FAILURE_STATUS",
    "Coalescer",
    "DEFAULT_PORT",
    "ServiceConfig",
    "BadRequestError",
    "DeadlineExceededError",
    "MethodNotAllowedError",
    "NotFoundError",
    "OverloadedError",
    "PayloadTooLargeError",
    "ServiceError",
    "FaultInjector",
    "LatencyHistogram",
    "Metrics",
    "WorkerPool",
    "RestartBudget",
    "ResultCache",
    "canonical_digest",
    "RetryPolicy",
    "CircuitBreaker",
    "ServiceServer",
    "serve",
    "ShardSupervisor",
    "aggregate_snapshots",
    "ThreadedServer",
]
