"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of the protocol for a JSON planning API: request line +
headers + ``Content-Length`` body in; out, either a buffered JSON body
(``render_response``) or a chunked transfer-encoded NDJSON stream
(``render_stream_head`` + ``encode_chunk`` per line + ``LAST_CHUNK``) for
the streaming endpoints.  ``keep-alive`` connection reuse on buffered
responses; streamed responses always close.  No TLS — this is an
in-cluster planning service, not a general web server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.service.errors import BadRequestError, PayloadTooLargeError

__all__ = [
    "RequestHead",
    "read_request",
    "render_response",
    "render_stream_head",
    "encode_chunk",
    "encode_ndjson_line",
    "LAST_CHUNK",
    "NDJSON_CONTENT_TYPE",
    "REASONS",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
]

#: Media type that opts a request into row-by-row NDJSON streaming.
NDJSON_CONTENT_TYPE = "application/x-ndjson"

#: Terminal frame of a chunked response (zero-length chunk, no trailers).
LAST_CHUNK = b"0\r\n\r\n"

#: Reason phrases for every status the service emits.
REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024


class RequestHead:
    """Parsed request line and headers (header names lower-cased)."""

    __slots__ = ("method", "path", "version", "headers")

    def __init__(
        self, method: str, path: str, version: str, headers: Dict[str, str]
    ) -> None:
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    @property
    def content_length(self) -> int:
        raw = self.headers.get("content-length", "0")
        try:
            length = int(raw)
        except ValueError:
            raise BadRequestError(f"invalid Content-Length: {raw!r}") from None
        if length < 0:
            raise BadRequestError(f"invalid Content-Length: {raw!r}")
        return length


def _parse_head(blob: bytes) -> RequestHead:
    try:
        text = blob.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 never fails
        raise BadRequestError("undecodable request head") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise BadRequestError(f"malformed request line: {lines[0]!r}")
    method, path, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise BadRequestError(f"unsupported HTTP version: {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequestError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return RequestHead(method, path.split("?", 1)[0], version, headers)


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[RequestHead, bytes]]:
    """Read one request; ``None`` on a cleanly closed idle connection.

    Raises
    ------
    BadRequestError
        On malformed framing (the caller answers 400 and closes).
    PayloadTooLargeError
        When head or body exceed the hard limits (answered with 413).
    """
    try:
        blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests
        raise BadRequestError("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise PayloadTooLargeError("request head too large") from exc
    if len(blob) > MAX_HEADER_BYTES:
        raise PayloadTooLargeError("request head too large")
    head = _parse_head(blob[:-4])
    length = head.content_length
    if length > MAX_BODY_BYTES:
        raise PayloadTooLargeError(
            f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise BadRequestError("truncated request body") from exc
    return head, body


def render_response(
    status: int,
    payload: Dict[str, object],
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one JSON response with correct framing headers.

    ``extra_headers`` (e.g. ``{"Retry-After": "1"}`` on 429) are emitted
    verbatim after the framing headers.
    """
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def render_stream_head(
    status: int = 200,
    content_type: str = NDJSON_CONTENT_TYPE,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Response head for a chunked stream (no body yet).

    Streamed responses carry no ``Content-Length`` — the body is framed
    with ``Transfer-Encoding: chunked`` and the connection closes after
    :data:`LAST_CHUNK`, so a truncated stream is always detectable (the
    peer sees EOF without the terminal chunk).
    """
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Transfer-Encoding: chunked",
        "Connection: close",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def encode_chunk(data: bytes) -> bytes:
    """Frame one non-empty chunk (hex length, CRLF, payload, CRLF)."""
    if not data:
        raise ValueError("chunks must be non-empty; end streams with LAST_CHUNK")
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


def encode_ndjson_line(payload: Dict[str, object]) -> bytes:
    """One NDJSON line — canonical (sorted-key) JSON plus the newline.

    Sorted keys make streamed bytes a pure function of the row dicts, so
    same-seed replays of a streaming endpoint are byte-identical on the
    wire, not just value-equal after parsing.
    """
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
