"""Asyncio TCP front end: connection handling, drain, signals.

``serve()`` is the one entry point: boot a :class:`PlanningService`, bind,
announce the port (as a ``{"event": "listening"}`` JSON line on stdout, so
supervisors and the bench harness can discover an ephemeral ``--port 0``),
then run until the stop event — SIGTERM/SIGINT by default — and drain
gracefully: stop accepting, flush open coalescing windows, wait up to
``drain_timeout_s`` for in-flight requests, close connections, release the
worker pool.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import signal
import socket
import sys
from typing import Callable, Dict, Optional, Set

from repro.service.app import PlanningService, RowStream
from repro.service.config import ServiceConfig
from repro.service.errors import ServiceError
from repro.service.httpio import (
    LAST_CHUNK,
    encode_chunk,
    encode_ndjson_line,
    read_request,
    render_response,
    render_stream_head,
)
from repro.service.schemas import error_payload

__all__ = ["ServiceServer", "serve"]

logger = logging.getLogger("repro.service")


class ServiceServer:
    """The TCP server wrapped around one :class:`PlanningService`."""

    def __init__(self, service: PlanningService) -> None:
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False

    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the real one)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def admin_port(self) -> Optional[int]:
        """The private loopback admin port (``None`` when not configured)."""
        if self._admin_server is None or not self._admin_server.sockets:
            return None
        return int(self._admin_server.sockets[0].getsockname()[1])

    @property
    def active_requests(self) -> int:
        return self._active

    async def start(self) -> None:
        """Bind the listening socket(s) (``config.port`` 0 → ephemeral).

        Three binding modes, in precedence order: adopt an inherited,
        already-listening socket (``listen_fd`` — the shard supervisor's
        fallback when ``SO_REUSEPORT`` is unavailable); bind with
        ``SO_REUSEPORT`` so sibling shards share the port (``reuse_port``);
        or a plain exclusive bind.  When ``admin_port`` is configured a
        second, loopback-only listener serves the same request handler so
        a supervisor can reach *this* process behind the kernel's
        connection balancing.
        """
        config = self.service.config
        if config.listen_fd is not None:
            # Adopts an already-bound inherited fd: wraps an existing kernel
            # object without any network I/O, and runs once at startup
            # before the server accepts traffic.
            sock = socket.socket(fileno=config.listen_fd)  # lint: ignore[RP201]
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=config.host,
                port=config.port,
                reuse_port=config.reuse_port,
            )
        if config.admin_port is not None:
            self._admin_server = await asyncio.start_server(
                self._handle_connection, host="127.0.0.1", port=config.admin_port
            )

    async def shutdown(self) -> None:
        """Graceful drain: unbind, flush, wait for in-flight, close.

        While draining, requests already being served (and pipelined
        requests on established keep-alive connections) still complete —
        answered with ``Connection: close`` and a ``/healthz`` readiness of
        ``draining`` — but the listening socket is gone, so new connections
        are refused immediately.
        """
        self._draining = True
        self.service.mark_draining()
        for listener in (self._server, self._admin_server):
            if listener is not None:
                listener.close()
                await listener.wait_closed()
        self.service.flush()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.service.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            logger.warning(
                "drain timeout: force-closing with %d request(s) in flight",
                self._active,
            )
        for writer in list(self._writers):
            writer.close()
        self.service.close()

    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, TimeoutError):
            pass  # peer went away mid-exchange
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, TimeoutError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(reader)
            except ServiceError as exc:
                writer.write(
                    render_response(
                        exc.status,
                        error_payload(exc.status, exc.reason, str(exc)),
                        keep_alive=False,
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            head, body = request
            if self.service.faults.take_drop_client(head.path):
                # Chaos hook: the connection dies without a single
                # response byte — the client sees a transport failure.
                return
            if self.service.wants_stream(head.method, head.path, head.headers):
                self._enter()
                try:
                    result = await self.service.handle_stream(
                        head.method, head.path, body
                    )
                    if isinstance(result, RowStream):
                        await self._relay_stream(result, writer, head.path)
                        return
                    status, payload = result
                    writer.write(
                        render_response(
                            status,
                            payload,
                            keep_alive=False,
                            extra_headers=self._extra_headers(status),
                        )
                    )
                    await writer.drain()
                    return
                finally:
                    self._exit()
            self._enter()
            try:
                status, payload = await self.service.handle(
                    head.method, head.path, body
                )
            finally:
                self._exit()
            keep_alive = head.keep_alive and not self._draining
            blob = render_response(
                status,
                payload,
                keep_alive=keep_alive,
                extra_headers=self._extra_headers(status),
            )
            if self.service.faults.take_abort(head.path):
                # Chaos hook: ship half the response, then drop the
                # connection — the client sees a truncated body.
                writer.write(blob[: max(1, len(blob) // 2)])
                await writer.drain()
                return
            writer.write(blob)
            await writer.drain()
            if not keep_alive:
                return

    async def _relay_stream(
        self, stream: RowStream, writer: asyncio.StreamWriter, path: str
    ) -> None:
        """Ship one committed NDJSON stream as a chunked 200 response.

        Every row is flushed as its own chunk the moment it arrives.  A
        terminal ``{"row": "error"}`` line ends the stream *without* the
        final zero-length chunk, so clients can always distinguish a
        truncated stream from a complete one; streams that finish cleanly
        get :data:`LAST_CHUNK`.  The connection closes either way.

        Chaos hook: an armed ``truncate_stream`` fault relays that many
        complete rows, then writes *half* of the next encoded chunk and
        closes — a byte-level mid-row truncation no error row announces.
        """
        truncate_after = self.service.faults.take_truncate_stream(path)
        writer.write(render_stream_head(200, stream.content_type))
        try:
            failed = False
            sent = 0
            async for row in stream.rows:
                blob = encode_chunk(encode_ndjson_line(row))
                if truncate_after is not None and sent >= truncate_after:
                    writer.write(blob[: max(1, len(blob) // 2)])
                    await writer.drain()
                    return
                writer.write(blob)
                await writer.drain()
                sent += 1
                if row.get("row") == "error":
                    failed = True
            if not failed:
                writer.write(LAST_CHUNK)
                await writer.drain()
        finally:
            await stream.close()

    def _extra_headers(self, status: int) -> Optional[Dict[str, str]]:
        """Backpressure responses carry an explicit retry hint."""
        if status in (429, 503):
            seconds = max(1, math.ceil(self.service.config.retry_after_s))
            return {"Retry-After": str(seconds)}
        return None

    def _enter(self) -> None:
        self._active += 1
        self._idle.clear()

    def _exit(self) -> None:
        self._active -= 1
        if self._active == 0:
            self._idle.set()


async def serve(
    config: ServiceConfig,
    stop: Optional[asyncio.Event] = None,
    install_signal_handlers: bool = True,
    announce: bool = True,
    on_ready: Optional[Callable[[ServiceServer], None]] = None,
) -> None:
    """Run the planning service until ``stop`` (or SIGTERM/SIGINT).

    Parameters
    ----------
    config:
        Full server configuration.
    stop:
        Shutdown trigger; created internally when omitted.  Setting it (from
        any thread via ``loop.call_soon_threadsafe``) starts a graceful
        drain.
    install_signal_handlers:
        Bind SIGTERM/SIGINT to the stop event (skipped automatically where
        the loop does not support it, e.g. non-main threads).
    announce:
        Print the ``{"event": "listening", "host": ..., "port": ...}`` JSON
        line on stdout once bound.
    on_ready:
        Callback invoked with the listening :class:`ServiceServer` (the test
        harness uses it to learn the ephemeral port and signal readiness).
    """
    service = PlanningService(config)
    service.preload()
    server = ServiceServer(service)
    await server.start()

    stop_event = stop if stop is not None else asyncio.Event()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break
    if announce:
        announcement: Dict[str, object] = {
            "event": "listening",
            "host": config.host,
            "port": server.port,
        }
        if server.admin_port is not None:
            announcement["admin_port"] = server.admin_port
        if config.shard_index is not None:
            announcement["shard"] = config.shard_index
        print(json.dumps(announcement), flush=True)
    logger.info(
        "%s",
        json.dumps(
            {
                "event": "serving",
                "host": config.host,
                "port": server.port,
                "workers": config.workers,
                "coalesce_ms": config.coalesce_ms,
            },
            sort_keys=True,
        ),
    )
    if on_ready is not None:
        on_ready(server)
    try:
        await stop_event.wait()
    finally:
        await server.shutdown()
    logger.info("%s", json.dumps({"event": "stopped"}, sort_keys=True))
    sys.stdout.flush()
