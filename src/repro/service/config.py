"""Server configuration (one frozen dataclass, CLI-mappable 1:1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.energy.ebar import CONVENTIONS
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
)

__all__ = ["ServiceConfig", "DEFAULT_PORT"]

#: Default TCP port (``--port 0`` binds an ephemeral port and announces it).
DEFAULT_PORT = 8123


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the planning service needs to boot.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port; the server
        announces the actual one on stdout as a ``{"event": "listening"}``
        JSON line.
    workers:
        Process-pool size for heavy sweep requests.  ``0`` runs sweeps
        inline on the event loop (useful for tests and tiny deployments);
        results are bit-identical either way.
    coalesce_ms:
        Request-coalescing window: concurrent single-point requests that
        share a batch group and arrive within this many milliseconds of the
        first are merged into one batch-kernel call.  ``0`` still merges
        requests landing in the same event-loop tick.
    max_coalesce:
        Hard cap on one coalesced batch; a full batch flushes immediately.
    queue_limit:
        Maximum in-flight sweep tasks (running + queued); excess requests
        are rejected with HTTP 429.
    seed:
        Base seed for the per-task ``SeedSequence.spawn`` stream handed to
        stochastic work (e.g. ``random_indoor`` environments requested
        without an explicit seed).  ``None`` draws fresh OS entropy.
    table_convention:
        ``e_bar_b`` normalization of the preloaded :class:`EbarTable`
        serving ``/v1/ebar`` lookups.
    max_sweep_points:
        Per-request cap on sweep axes (d1 / distances / points).
    drain_timeout_s:
        Graceful-shutdown budget: how long to wait for in-flight requests
        after SIGTERM before force-closing connections.
    request_log:
        Emit one structured (JSON) log line per request.
    request_timeout_ms:
        Per-request deadline.  A request whose handler (including pooled
        sweep work) exceeds it is cancelled and answered 504 with a
        structured error body.  ``None`` disables the deadline.
    max_pool_restarts:
        How many times the supervised worker pool may replace a broken
        ``ProcessPoolExecutor`` (a crashed/killed worker) before giving up
        and degrading to inline execution.
    retry_after_s:
        Backoff hint sent as the ``Retry-After`` header on 429 responses
        (rounded up to whole seconds on the wire).
    reuse_port:
        Bind the listening socket with ``SO_REUSEPORT`` so several server
        processes (shards) can share one port, with the kernel balancing
        accepted connections across them.  Requires OS support.
    listen_fd:
        Adopt an already-listening socket inherited on this file
        descriptor instead of binding one — the shard supervisor's
        fallback on platforms without ``SO_REUSEPORT`` (children then
        share the supervisor's accept queue).  Overrides host/port/
        ``reuse_port`` for the main listener.
    admin_port:
        When not ``None``, additionally serve ``/healthz`` and
        ``/metrics`` (and everything else) on a private loopback listener
        at this port (``0`` = ephemeral, announced as ``admin_port``).
        The shard supervisor uses it to reach each shard individually
        behind the kernel's connection balancing.
    shard_index:
        This server's slot in a shard fleet (``None`` outside one);
        echoed in the announce line and per-request logs so supervisors
        can attribute output.
    result_cache:
        Serve repeated POST requests from the persistent request-hash
        result cache (see :mod:`repro.service.rescache`).  Off by default
        for library users and tests; the CLI daemon turns it on.
        ``REPRO_NO_CACHE=1`` force-disables it regardless.
    result_cache_dir:
        Override the result-cache directory (default: the shared
        ``repro-comimo`` cache root).
    max_sims:
        Concurrently *streaming* ``/v1/simulate`` runs (each is its own
        child process); excess requests are rejected with HTTP 429.
        Buffered simulate requests ride the worker pool instead and are
        bounded by ``queue_limit``.
    max_sim_nodes:
        Per-request cap on a scenario's admission-time ``n_nodes``.
    stream_segment_points:
        Axis-segment size for NDJSON sweep streaming: a streamed
        overlay/underlay sweep is computed in pool tasks of at most this
        many points, with each segment's rows flushed to the client as
        soon as it lands.
    sim_stall_timeout_ms:
        Per-row stall deadline for streamed ``/v1/simulate``: when the
        child process produces no row for this long, it is killed and the
        stream ends with a terminal ``{"row": "error"}`` line — a stalled
        simulation never turns into an indefinite client hang.
        Independent of ``request_timeout_ms`` (which bounds buffered
        requests); ``None`` disables the deadline.
    chaos_admin:
        Allow ``POST /chaos/kill_shard`` on the shard supervisor's
        loopback admin listener, so a load generator can kill a shard at
        a scheduled request index.  Off by default: the admin listener
        stays read-only unless a chaos run explicitly opts in.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2
    coalesce_ms: float = 2.0
    max_coalesce: int = 64
    queue_limit: int = 32
    seed: Optional[int] = None
    table_convention: str = "paper"
    max_sweep_points: int = 4096
    drain_timeout_s: float = 5.0
    request_log: bool = True
    request_timeout_ms: Optional[float] = None
    max_pool_restarts: int = 3
    retry_after_s: float = 1.0
    reuse_port: bool = False
    listen_fd: Optional[int] = None
    admin_port: Optional[int] = None
    shard_index: Optional[int] = None
    result_cache: bool = False
    result_cache_dir: Optional[str] = None
    max_sims: int = 2
    max_sim_nodes: int = 5000
    stream_segment_points: int = 512
    sim_stall_timeout_ms: Optional[float] = 10000.0
    chaos_admin: bool = False

    def __post_init__(self) -> None:
        check_in_range(self.port, "port", 0, 65535)
        check_non_negative_int(self.workers, "workers")
        check_non_negative(self.coalesce_ms, "coalesce_ms")
        check_positive_int(self.max_coalesce, "max_coalesce")
        check_positive_int(self.queue_limit, "queue_limit")
        if self.seed is not None:
            check_non_negative_int(self.seed, "seed")
        if self.table_convention not in CONVENTIONS:
            raise ValueError(
                f"table_convention must be one of {CONVENTIONS}, "
                f"got {self.table_convention!r}"
            )
        check_positive_int(self.max_sweep_points, "max_sweep_points")
        check_positive(self.drain_timeout_s, "drain_timeout_s")
        if self.request_timeout_ms is not None:
            check_positive(self.request_timeout_ms, "request_timeout_ms")
        check_non_negative_int(self.max_pool_restarts, "max_pool_restarts")
        check_positive(self.retry_after_s, "retry_after_s")
        if self.listen_fd is not None:
            check_non_negative_int(self.listen_fd, "listen_fd")
        if self.admin_port is not None:
            check_in_range(self.admin_port, "admin_port", 0, 65535)
        if self.shard_index is not None:
            check_non_negative_int(self.shard_index, "shard_index")
        check_positive_int(self.max_sims, "max_sims")
        check_positive_int(self.max_sim_nodes, "max_sim_nodes")
        check_positive_int(self.stream_segment_points, "stream_segment_points")
        if self.sim_stall_timeout_ms is not None:
            check_positive(self.sim_stall_timeout_ms, "sim_stall_timeout_ms")

    @property
    def coalesce_window_s(self) -> float:
        """The coalescing window in seconds (what the event loop uses)."""
        return self.coalesce_ms / 1000.0

    @property
    def request_timeout_s(self) -> Optional[float]:
        """The per-request deadline in seconds (``None`` when disabled)."""
        if self.request_timeout_ms is None:
            return None
        return self.request_timeout_ms / 1000.0

    @property
    def sim_stall_timeout_s(self) -> Optional[float]:
        """The simulate stall deadline in seconds (``None`` when disabled)."""
        if self.sim_stall_timeout_ms is None:
            return None
        return self.sim_stall_timeout_ms / 1000.0
