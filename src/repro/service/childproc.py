"""Fork hygiene for service child processes (pool workers, sim children).

A forked child inherits every parent file descriptor — including the
shard's SO_REUSEPORT listening socket and whatever client connections are
accepted at fork time.  Those copies have real consequences, found by the
chaos loadgen's ``kill_shard`` fault:

* If the shard is SIGKILLed while a long-lived child survives (a pool
  worker, a running simulation), the child's copy of the listening
  socket stays in the kernel's SO_REUSEPORT group with nobody accepting
  it — a fraction of all *new* connections to the port hash onto the
  dead socket and hang until the client deadline, indefinitely poisoning
  an otherwise healthy fleet.
* An accepted connection the parent closed stays half-open until the
  child exits, so abrupt-close signals (truncation, ``drop_client``)
  reach clients only when the child finishes — minutes, for a city-scale
  simulation — instead of immediately.

:func:`harden_child` fixes both: it closes every inherited *socket* fd
(pipes — the pool and simulation result channels — are left alone) and
arms ``PR_SET_PDEATHSIG`` so the kernel SIGKILLs the child the moment
its parent dies, however the parent died.
"""

from __future__ import annotations

import ctypes
import os
import signal
import stat
import sys

__all__ = ["arm_parent_death_signal", "close_inherited_sockets", "harden_child"]

#: ``prctl(2)`` option: deliver a signal to this process when its parent
#: dies (cleared across fork, so each child must arm it itself).
_PR_SET_PDEATHSIG = 1

#: How far to scan the fd table.  Service processes sit far below this;
#: a bounded scan keeps the fork path O(1) even under generous ulimits.
_MAX_SCAN_FD = 4096


def close_inherited_sockets(max_fd: int = _MAX_SCAN_FD) -> None:
    """Close every socket fd of this process, leaving pipes and files.

    Called from a freshly forked child: the sockets are all inherited
    (the listener, accepted connections, the event loop's self-pipe
    pair), and none of them belong to the child.  The pipe back to the
    parent is not a socket, so it survives untouched.
    """
    for fd in range(3, max_fd):
        try:
            mode = os.fstat(fd).st_mode
        except OSError:
            continue
        if stat.S_ISSOCK(mode):
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - raced with another closer
                pass


def arm_parent_death_signal() -> None:
    """Linux: SIGKILL this process the moment its parent dies.

    ``daemon=True`` children are only reaped on a *clean* parent exit; a
    SIGKILLed parent orphans them silently.  ``PR_SET_PDEATHSIG`` closes
    that gap in the kernel — and SIGKILL is delivered even to a stopped
    (SIGSTOPped) child.  No-op on platforms without ``prctl``.
    """
    if not sys.platform.startswith("linux"):  # pragma: no cover - non-linux
        return
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        prctl = libc.prctl
    except (OSError, AttributeError):  # pragma: no cover - exotic libc
        return
    prctl(_PR_SET_PDEATHSIG, int(signal.SIGKILL), 0, 0, 0)
    if os.getppid() == 1:
        # The parent died between fork and prctl — the death signal will
        # never fire, so take the exit the parent's death implies.
        os._exit(1)


def harden_child() -> None:
    """Standard hygiene for every forked service child."""
    arm_parent_death_signal()
    close_inherited_sockets()
