"""Client-side resilience: retry backoff policy and circuit breaker.

:class:`RetryPolicy` computes exponential-backoff-with-full-jitter delays
(the AWS architecture-blog scheme: sleep ``uniform(0, min(cap, base *
multiplier**attempt))``) and honors a server-provided ``Retry-After`` hint
when one is available.  Jitter is drawn from a :mod:`repro.utils.rng`
generator, so a seeded policy produces a reproducible delay sequence —
tests assert exact backoff schedules instead of sleeping.

:class:`CircuitBreaker` is the classic three-state machine over
*transport* failures (connection refused/reset, timeouts — not HTTP error
statuses, which prove the server is reachable): ``closed`` until
``failure_threshold`` consecutive failures, then ``open`` (every call
refused locally) for ``reset_timeout_s``, then ``half_open`` (one probe
allowed; success closes the breaker, failure re-opens it).

Both classes take injectable ``sleep``/``clock`` callables and never read
a wall clock themselves; :func:`default_sleeper` and
:func:`default_clock` are the one sanctioned place the service's client
stack touches ``time`` (rule RP107 forbids ``time.sleep`` anywhere else
under ``repro.service``).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "default_sleeper",
    "default_clock",
]


def default_sleeper(delay_s: float) -> None:
    """Really sleep (the production sleeper; tests inject a recorder)."""
    if delay_s > 0.0:
        time.sleep(delay_s)


def default_clock() -> float:
    """A monotonic clock in seconds (the production clock for breakers)."""
    return time.monotonic()  # lint: ignore[RP103]


class RetryPolicy:
    """Exponential backoff with full jitter, ``Retry-After`` aware.

    Parameters
    ----------
    max_attempts:
        Total tries including the first one; ``1`` disables retries.
    base_delay_s, multiplier, max_delay_s:
        Backoff cap before attempt ``k`` (0-based) is
        ``min(max_delay_s, base_delay_s * multiplier**k)``; the actual
        delay is uniform in ``[0, cap]`` (full jitter).
    rng:
        Seed or generator for the jitter draw (``None`` = fresh entropy;
        pass an int for a deterministic schedule).
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.1,
        multiplier: float = 2.0,
        max_delay_s: float = 5.0,
        rng: RngLike = None,
    ) -> None:
        self.max_attempts = check_positive_int(max_attempts, "max_attempts")
        self.base_delay_s = check_positive(base_delay_s, "base_delay_s")
        self.multiplier = check_positive(multiplier, "multiplier")
        self.max_delay_s = check_positive(max_delay_s, "max_delay_s")
        self._rng = as_rng(rng)

    def backoff_s(
        self, attempt: int, retry_after_s: Optional[float] = None
    ) -> float:
        """Delay before re-trying after failed attempt ``attempt`` (0-based).

        A server-provided ``retry_after_s`` (from a ``Retry-After`` header
        on 429/503) overrides the jittered backoff: the server knows its
        own queue better than the client's exponential guess.
        """
        check_non_negative(attempt, "attempt")
        if retry_after_s is not None:
            return check_non_negative(retry_after_s, "retry_after_s")
        cap = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        return float(self._rng.uniform(0.0, cap))


class CircuitBreaker:
    """Trip after consecutive transport failures; recover via a probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive transport failures that open the circuit.
    reset_timeout_s:
        How long an open circuit refuses calls before allowing one
        half-open probe.
    clock:
        Injectable monotonic clock (seconds); defaults to
        :func:`default_clock`.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.failure_threshold = check_positive_int(
            failure_threshold, "failure_threshold"
        )
        self.reset_timeout_s = check_positive(reset_timeout_s, "reset_timeout_s")
        self._clock = clock if clock is not None else default_clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        if self._opened_at is None:
            return "closed"
        if self._probing or self._elapsed() >= self.reset_timeout_s:
            return "half_open"
        return "open"

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """Whether a call may proceed now (may admit one half-open probe)."""
        if self._opened_at is None:
            return True
        if self._probing:  # one probe at a time
            return False
        if self._elapsed() >= self.reset_timeout_s:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """A call completed at the transport level; close the circuit."""
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """A transport failure; open the circuit at the threshold."""
        self._failures += 1
        if self._probing or self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self._probing = False

    def _elapsed(self) -> float:
        assert self._opened_at is not None
        return self._clock() - self._opened_at
