"""``python -m repro.service`` — the same entry point as ``repro-service``."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
