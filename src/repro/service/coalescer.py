"""The request-coalescing scheduler.

Concurrent single-point requests that share a *batch group* (same endpoint
and same non-swept parameters) are merged into one call to the PR-1 batch
kernels and the results de-multiplexed back per request.  The first request
for a group opens a window of ``window_s`` seconds; every request for the
same group arriving before the window expires joins the batch (up to
``max_batch``, which flushes immediately).  Because the batch kernels are
documented — and tested — to be elementwise bit-identical to their scalar
counterparts, a coalesced response equals the response the same request
would have produced alone.

The batch function runs synchronously inside the event loop (the kernels
are vectorized NumPy on at most ``max_batch`` points — microseconds), so
batches are also serialized: no cross-batch interleaving can reorder
floating-point reductions.
"""

from __future__ import annotations

import asyncio
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.utils.validation import check_non_negative, check_positive_int

__all__ = ["Coalescer"]

KeyT = TypeVar("KeyT", bound=Hashable)
ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class _Pending(Generic[ItemT, ResultT]):
    """One open batch: collected items, their futures, the flush timer."""

    __slots__ = ("items", "futures", "timer")

    def __init__(self) -> None:
        self.items: List[ItemT] = []
        self.futures: List["asyncio.Future[ResultT]"] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class Coalescer(Generic[KeyT, ItemT, ResultT]):
    """Merge concurrent same-group submissions into one batch call.

    Parameters
    ----------
    batch_fn:
        ``(key, items) -> results``, one result per item *in order*.  A
        result may be an ``Exception`` instance, which is raised out of the
        corresponding :meth:`submit` alone; raising from ``batch_fn`` itself
        fails the whole batch.
    window_s:
        Coalescing window in seconds.  ``0`` still merges submissions that
        land in the same event-loop iteration.
    max_batch:
        Flush immediately once a batch collects this many items.
    on_batch:
        Optional hook called with each flushed batch's size (metrics).
    """

    def __init__(
        self,
        batch_fn: Callable[[KeyT, Sequence[ItemT]], Sequence[Union[ResultT, Exception]]],
        window_s: float,
        max_batch: int = 64,
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._batch_fn = batch_fn
        self._window_s = check_non_negative(window_s, "window_s")
        self._max_batch = check_positive_int(max_batch, "max_batch")
        self._on_batch = on_batch
        self._pending: Dict[KeyT, _Pending[ItemT, ResultT]] = {}

    # ------------------------------------------------------------------ #

    @property
    def pending_groups(self) -> int:
        """Number of groups with an open (unflushed) batch."""
        return len(self._pending)

    async def submit(self, key: KeyT, item: ItemT) -> ResultT:
        """Join (or open) the batch for ``key``; await this item's result."""
        loop = asyncio.get_running_loop()
        batch = self._pending.get(key)
        if batch is None:
            batch = _Pending()
            self._pending[key] = batch
            batch.timer = loop.call_later(self._window_s, self._flush, key)
        future: "asyncio.Future[ResultT]" = loop.create_future()
        batch.items.append(item)
        batch.futures.append(future)
        if len(batch.items) >= self._max_batch:
            self._flush(key)
        return await future

    def flush_all(self) -> None:
        """Flush every open batch now (graceful-drain path)."""
        for key in list(self._pending):
            self._flush(key)

    # ------------------------------------------------------------------ #

    def _flush(self, key: KeyT) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:  # already flushed by the max-batch fast path
            return
        if batch.timer is not None:
            batch.timer.cancel()
        if self._on_batch is not None:
            self._on_batch(len(batch.items))
        try:
            results = self._batch_fn(key, batch.items)
        except Exception as exc:  # whole-batch failure: every waiter sees it
            for future in batch.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        if len(results) != len(batch.items):
            error = RuntimeError(
                f"batch function returned {len(results)} results "
                f"for {len(batch.items)} items"
            )
            for future in batch.futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(batch.futures, results):
            if future.done():  # waiter went away (connection dropped)
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)
