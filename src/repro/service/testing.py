"""Test harness: run the service in a background thread of this process.

:class:`ThreadedServer` boots the full asyncio stack (server, coalescers,
worker pool) on a dedicated thread, waits for the listening socket, and
exposes the resolved ephemeral port plus a ready-made
:class:`ServiceClient`.  Context-manager exit triggers the same graceful
drain as SIGTERM.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.service.app import PlanningService
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import ServiceServer, serve
from repro.utils.validation import check_positive

__all__ = ["ThreadedServer"]


class ThreadedServer:
    """An in-process planning service on a background thread.

    Usage::

        with ThreadedServer(ServiceConfig(port=0, workers=0)) as server:
            client = server.client()
            client.healthz()
    """

    def __init__(
        self, config: Optional[ServiceConfig] = None, startup_timeout_s: float = 30.0
    ) -> None:
        check_positive(startup_timeout_s, "startup_timeout_s")
        self.config = config if config is not None else ServiceConfig(port=0, workers=0)
        self.startup_timeout_s = float(startup_timeout_s)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._server: Optional[ServiceServer] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound port (valid once the server has started)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.port

    @property
    def service(self) -> "PlanningService":
        """The live :class:`PlanningService` (chaos tests arm faults here)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.service

    def client(self, timeout_s: float = 30.0) -> ServiceClient:
        """A fresh :class:`ServiceClient` bound to this server's port."""
        return ServiceClient(self.config.host, self.port, timeout_s=timeout_s)

    def start(self) -> "ThreadedServer":
        """Boot the server thread and block until it is accepting."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.startup_timeout_s):
            raise RuntimeError("service did not come up in time")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error!r}")
        return self

    def request_stop(self) -> None:
        """Trigger the graceful drain *without* joining the server thread.

        Drain tests use this to observe the draining state (in-flight
        requests completing, ``/healthz`` reporting ``draining``, new
        connections refused) while the server is still shutting down; call
        :meth:`stop` afterwards to join.
        """
        if self._loop is not None and self._stop is not None:
            loop, stop = self._loop, self._stop
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # loop already closed
                pass

    def stop(self) -> None:
        """Trigger the graceful drain and join the server thread."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(self.startup_timeout_s)
            self._thread = None

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surface boot failures to start()
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await serve(
            self.config,
            stop=self._stop,
            install_signal_handlers=False,
            announce=False,
            on_ready=self._on_ready,
        )

    def _on_ready(self, server: ServiceServer) -> None:
        self._server = server
        self._ready.set()
