"""`/v1/simulate` execution: scenario runs in a dedicated child process.

A city-scale scenario is minutes of CPU-bound Python — far too long for
the event loop and the wrong shape for the request/response worker pool
when the client wants *streaming* snapshots.  So each streamed simulation
gets its own ``multiprocessing`` child: the child runs
:class:`~repro.scenario.runtime.ScenarioRuntime` and ships every row over
a pipe; the parent relays rows to the HTTP layer as they arrive, with a
per-row stall deadline (the streaming analogue of the buffered path's
request deadline) and a concurrency gate that answers 429 once
``max_sims`` simulations are already live — the same backpressure
contract as the sweep pool.

The buffered (non-streaming) ``/v1/simulate`` path does not live here: it
runs :func:`simulate_rows` on the ordinary worker pool like any sweep.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.scenario.runtime import ScenarioRuntime
from repro.scenario.spec import ScenarioSpec, scenario_from_mapping
from repro.service.childproc import harden_child
from repro.service.errors import BadRequestError, OverloadedError
from repro.service.faults import FaultInjector
from repro.service.metrics import Metrics

__all__ = ["SimulationRunner", "parse_simulate_request", "simulate_rows"]

Row = Dict[str, object]

#: Pipe poll granularity — how quickly a cancelled stream reaps its child.
_POLL_S = 0.1


def parse_simulate_request(data: object, max_nodes: int) -> ScenarioSpec:
    """Validate a ``/v1/simulate`` body into a :class:`ScenarioSpec`.

    Library ``ValueError``s (unknown fields, bad types, out-of-range
    values) become 400s; ``max_nodes`` bounds the admission-time
    population (churn joins are separately capped by ``max_joins``).
    """
    if not isinstance(data, dict):
        raise BadRequestError("request body must be a JSON object")
    try:
        spec = scenario_from_mapping(data)
    except (ValueError, TypeError) as exc:
        raise BadRequestError(str(exc)) from exc
    if spec.n_nodes > max_nodes:
        raise BadRequestError(
            f"n_nodes={spec.n_nodes} exceeds the server limit of {max_nodes}"
        )
    return spec


def simulate_rows(spec: ScenarioSpec) -> List[Row]:
    """Run a whole scenario to completion (the pool-backed buffered path).

    A module-level pure function of the spec, so pooled and inline
    execution are bit-identical — and identical to the streamed rows.
    """
    return list(ScenarioRuntime(spec).run())


def _child_main(spec: ScenarioSpec, conn: Connection) -> None:
    """Child-process body: stream rows, then a terminal status tuple."""
    # On fork platforms this child inherits the server loop's signal
    # machinery, including the ``signal.set_wakeup_fd`` socketpair shared
    # with the parent.  Left in place, the parent's own cleanup
    # ``terminate()`` makes the child write SIGTERM into that shared pipe
    # — which the parent's loop then reads as the *server* being told to
    # shut down.  Detach before any signal can arrive.
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    # Drop inherited sockets (listener, other clients' connections) and
    # die with the parent: a child that outlives a killed shard would
    # otherwise keep the shard's SO_REUSEPORT listener half-alive.
    harden_child()
    try:
        for row in ScenarioRuntime(spec).run():
            conn.send(("row", row))
        conn.send(("done", None))
    except Exception as exc:  # noqa: BLE001 - relayed as a terminal error row
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # parent already gone
            pass
    finally:
        conn.close()


class SimulationRunner:
    """Gate and relay for streamed simulations.

    ``max_sims`` bounds concurrently live simulation processes;
    :meth:`stream` raises :class:`OverloadedError` (HTTP 429) beyond it.
    The slot is taken synchronously *before* any response bytes leave the
    server, so an overloaded request still gets a clean JSON 429.
    """

    def __init__(
        self,
        max_sims: int,
        metrics: Optional[Metrics] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if max_sims < 1:
            raise ValueError("max_sims must be >= 1")
        self._max_sims = max_sims
        self._active = 0
        self._metrics = metrics
        self._faults = faults

    @property
    def active(self) -> int:
        """Simulations currently streaming."""
        return self._active

    def acquire(self) -> None:
        """Reserve a simulation slot or raise 429 backpressure."""
        if self._active >= self._max_sims:
            if self._metrics is not None:
                self._metrics.pool_reject()
            raise OverloadedError(
                f"{self._active}/{self._max_sims} simulation(s) already "
                "streaming; retry later"
            )
        self._active += 1

    def release(self) -> None:
        self._active = max(0, self._active - 1)

    async def stream(
        self, spec: ScenarioSpec, stall_timeout_s: Optional[float]
    ) -> AsyncIterator[Row]:
        """Yield scenario rows from a child process as they are produced.

        The caller must have :meth:`acquire`-d a slot and is responsible
        for :meth:`release` when done with the stream (the service wires
        it through ``RowStream.on_close``, which runs even if this
        generator is never started).  The child process itself is cleaned
        up here: generator teardown (``aclose``/``GeneratorExit``) or
        normal exhaustion terminates and joins it.
        ``stall_timeout_s`` bounds the gap between consecutive rows — a
        child that stops producing is killed and the stream ends with an
        ``{"row": "error", ...}`` line (the connection then closes without
        the terminal chunk, so clients cannot mistake it for completion).
        """
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main, args=(spec, child_conn), daemon=True
        )
        process.start()
        child_conn.close()
        loop = asyncio.get_running_loop()
        fault = self._faults.take_sim_fault() if self._faults is not None else None
        stalled = False
        rows_sent = 0
        try:
            if fault is not None and fault[1] <= 0:
                stalled = self._apply_sim_fault(process, fault[0])
                fault = None
            waited = 0.0
            while True:
                # Poll in the default thread pool: keeps the event loop
                # free and lets cancellation (client gone) land between
                # polls instead of blocking on a quiet pipe.
                ready = await loop.run_in_executor(None, parent_conn.poll, _POLL_S)
                if not ready:
                    if not process.is_alive() and not parent_conn.poll():
                        yield self._error_row("simulation process died", 500)
                        return
                    waited += _POLL_S
                    if stall_timeout_s is not None and waited >= stall_timeout_s:
                        yield self._error_row(
                            f"no snapshot within the {stall_timeout_s:g} s "
                            "stall deadline",
                            504,
                        )
                        return
                    continue
                waited = 0.0
                try:
                    kind, value = self._receive(parent_conn)
                except EOFError:
                    yield self._error_row("simulation ended without a summary", 500)
                    return
                if kind == "row":
                    rows_sent += 1
                    yield value  # type: ignore[misc]
                    if fault is not None and rows_sent >= fault[1]:
                        stalled = self._apply_sim_fault(process, fault[0])
                        fault = None
                elif kind == "done":
                    return
                else:
                    yield self._error_row(str(value), 500)
                    return
        finally:
            parent_conn.close()
            if stalled and process.is_alive() and process.pid is not None:
                # SIGTERM stays pending on a stopped process; resume it
                # first so the terminate below can actually be delivered.
                try:
                    os.kill(process.pid, signal.SIGCONT)
                except (ProcessLookupError, OSError):  # pragma: no cover
                    pass
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)

    @staticmethod
    def _apply_sim_fault(process: BaseProcess, action: str) -> bool:
        """Fire an armed child fault; returns whether the child is stopped."""
        if not process.is_alive() or process.pid is None:
            return False
        if action == "kill":
            process.kill()
            return False
        try:
            os.kill(process.pid, signal.SIGSTOP)
        except (ProcessLookupError, OSError):  # pragma: no cover
            return False
        return True

    @staticmethod
    def _receive(conn: Connection) -> Tuple[str, Any]:
        return conn.recv()  # type: ignore[no-any-return]

    @staticmethod
    def _error_row(detail: str, status: int) -> Row:
        return {
            "row": "error",
            "error": "stream failed",
            "detail": detail,
            "status": status,
        }
