"""Service error hierarchy mapped onto HTTP status codes.

Every failure a handler can articulate is a :class:`ServiceError` subclass
carrying its HTTP status; the dispatcher also folds the library's own
``ValueError``/``TypeError`` (invalid parameters) and ``KeyError``
(off-grid table lookups) into 400/404 so clients always receive a JSON
error object instead of a traceback.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "BadRequestError",
    "NotFoundError",
    "MethodNotAllowedError",
    "PayloadTooLargeError",
    "OverloadedError",
    "DeadlineExceededError",
]


class ServiceError(Exception):
    """Base class: an error with a definite HTTP status code."""

    status: int = 500
    reason: str = "Internal Server Error"


class BadRequestError(ServiceError):
    """Malformed JSON, missing fields, or out-of-domain parameters."""

    status = 400
    reason = "Bad Request"


class NotFoundError(ServiceError):
    """Unknown route, or an off-grid / infeasible ``e_bar_b`` table key."""

    status = 404
    reason = "Not Found"


class MethodNotAllowedError(ServiceError):
    """Known route hit with the wrong HTTP method."""

    status = 405
    reason = "Method Not Allowed"


class PayloadTooLargeError(ServiceError):
    """Request body exceeds the configured size limit."""

    status = 413
    reason = "Payload Too Large"


class OverloadedError(ServiceError):
    """The sweep pool's queue is full — backpressure, retry later."""

    status = 429
    reason = "Too Many Requests"


class DeadlineExceededError(ServiceError):
    """The request blew past ``--request-timeout-ms``; its work was cancelled."""

    status = 504
    reason = "Gateway Timeout"
