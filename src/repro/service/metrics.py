"""In-process service metrics: counters, gauges and latency histograms.

Everything here is mutated from the event-loop thread only (handlers,
coalescer flushes and pool bookkeeping all run there), so plain ints are
safe without locks.  ``snapshot()`` renders the whole state as one
JSON-serializable dict — the body of ``GET /metrics``.

Durations are *passed in* (measured by callers with ``loop.time()``); the
module itself never reads a clock, keeping the library deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.validation import check_non_negative

__all__ = ["Metrics", "LatencyHistogram", "DEFAULT_LATENCY_BOUNDS_MS"]

#: Log-ish spaced bucket upper bounds [ms]; one overflow bucket is implied.
DEFAULT_LATENCY_BOUNDS_MS: Tuple[float, ...] = (
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    5000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated quantiles."""

    def __init__(self, bounds_ms: Optional[Sequence[float]] = None) -> None:
        if bounds_ms is None:
            bounds_ms = DEFAULT_LATENCY_BOUNDS_MS
        bounds = tuple(sorted(float(b) for b in bounds_ms))
        if not bounds or any(b <= 0.0 for b in bounds):
            raise ValueError("bounds_ms must be non-empty and strictly positive")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # one overflow bucket
        self._count = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one observation (milliseconds)."""
        latency_ms = check_non_negative(latency_ms, "latency_ms")
        index = len(self._bounds)
        for j, bound in enumerate(self._bounds):
            if latency_ms <= bound:
                index = j
                break
        self._counts[index] += 1
        self._count += 1
        self._sum_ms += latency_ms
        if latency_ms > self._max_ms:
            self._max_ms = latency_ms

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """Histogram-interpolated quantile estimate in ms (0 when empty).

        Linear interpolation inside the target bucket; the overflow bucket
        reports the largest observed value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must lie in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for j, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if j >= len(self._bounds):
                    return self._max_ms
                lower = self._bounds[j - 1] if j > 0 else 0.0
                upper = self._bounds[j]
                within = max(rank - cumulative, 0.0) / bucket_count
                return lower + (upper - lower) * within
            cumulative += bucket_count
        return self._max_ms

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram (same bounds).

        The shard supervisor uses this to aggregate per-shard ``/metrics``
        snapshots into one fleet-wide latency view; quantiles are then
        re-interpolated over the merged buckets.
        """
        if other._bounds != self._bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for j, count in enumerate(other._counts):
            self._counts[j] += count
        self._count += other._count
        self._sum_ms += other._sum_ms
        if other._max_ms > self._max_ms:
            self._max_ms = other._max_ms

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from its :meth:`snapshot` dict.

        Inverse of :meth:`snapshot` up to the derived quantile fields; used
        to merge ``/metrics`` payloads fetched from remote shards.
        """
        buckets = snapshot.get("buckets")
        if not isinstance(buckets, dict):
            raise ValueError("snapshot has no 'buckets' dict")
        bounds: List[float] = []
        counts: List[int] = []
        for key, value in buckets.items():
            if key == "overflow":
                continue
            if not key.startswith("le_"):
                raise ValueError(f"unexpected bucket key {key!r}")
            bounds.append(float(key[3:]))
            counts.append(int(value))
        histogram = cls(bounds)
        counts.append(int(buckets.get("overflow", 0)))
        histogram._counts = counts
        histogram._count = int(snapshot.get("count", 0))
        histogram._sum_ms = float(snapshot.get("sum_ms", 0.0))
        histogram._max_ms = float(snapshot.get("max_ms", 0.0))
        return histogram

    def snapshot(self) -> Dict[str, object]:
        """Counts, sum/max and interpolated p50/p95/p99 plus the buckets."""
        buckets = {f"le_{bound:g}": count for bound, count in zip(self._bounds, self._counts)}
        buckets["overflow"] = self._counts[-1]
        return {
            "count": self._count,
            "sum_ms": self._sum_ms,
            "max_ms": self._max_ms,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
            "buckets": buckets,
        }


class Metrics:
    """All service counters behind ``GET /metrics``."""

    def __init__(self, latency_bounds_ms: Optional[Sequence[float]] = None) -> None:
        self._requests_total = 0
        self._by_endpoint: Dict[str, int] = {}
        self._by_status: Dict[str, int] = {}
        self._latency = LatencyHistogram(latency_bounds_ms)
        # request coalescing
        self._batches = 0
        self._batched_requests = 0
        self._max_batch = 0
        self._batch_sizes: List[int] = []
        # ebar result cache
        self._cache_hits = 0
        self._cache_misses = 0
        # persistent request-hash result cache
        self._result_cache_hits = 0
        self._result_cache_misses = 0
        # sweep pool
        self._pool_depth = 0
        self._pool_peak_depth = 0
        self._pool_completed = 0
        self._pool_rejected = 0
        # resilience: pool supervision, deadlines, degraded fallback
        self._pool_restarts = 0
        self._pool_task_retries = 0
        self._degraded_requests = 0
        self._deadline_timeouts = 0
        # NDJSON streaming
        self._streams_opened = 0
        self._stream_rows = 0

    # ------------------------------------------------------------------ #
    # Request lifecycle                                                  #
    # ------------------------------------------------------------------ #

    def record_request(self, endpoint: str) -> None:
        """Count one arriving request against its endpoint."""
        self._requests_total += 1
        self._by_endpoint[endpoint] = self._by_endpoint.get(endpoint, 0) + 1

    def record_response(self, status: int, latency_ms: float) -> None:
        """Count one finished response: status class and latency."""
        key = str(int(status))
        self._by_status[key] = self._by_status.get(key, 0) + 1
        self._latency.observe(latency_ms)

    # ------------------------------------------------------------------ #
    # Coalescer / cache / pool hooks                                     #
    # ------------------------------------------------------------------ #

    def observe_batch(self, size: int) -> None:
        """One coalesced flush of ``size`` merged requests."""
        if size < 1:
            raise ValueError(f"batch size must be >= 1, got {size}")
        self._batches += 1
        self._batched_requests += size
        self._batch_sizes.append(size)
        if size > self._max_batch:
            self._max_batch = size

    def cache_hit(self) -> None:
        """Count one ē_b result-cache hit."""
        self._cache_hits += 1

    def cache_miss(self) -> None:
        """Count one ē_b result-cache miss."""
        self._cache_misses += 1

    def result_cache_hit(self) -> None:
        """Count one persistent result-cache hit (response served from disk)."""
        self._result_cache_hits += 1

    def result_cache_miss(self) -> None:
        """Count one persistent result-cache miss (response computed fresh)."""
        self._result_cache_misses += 1

    def pool_enter(self) -> None:
        """A sweep entered the worker pool (depth and peak tracking)."""
        self._pool_depth += 1
        if self._pool_depth > self._pool_peak_depth:
            self._pool_peak_depth = self._pool_depth

    def pool_exit(self) -> None:
        """A pooled sweep finished (success or failure)."""
        if self._pool_depth > 0:
            self._pool_depth -= 1
        self._pool_completed += 1

    def pool_reject(self) -> None:
        """A sweep was rejected because the queue was full (429)."""
        self._pool_rejected += 1

    def pool_restart(self) -> None:
        """The supervised pool replaced a broken ProcessPoolExecutor."""
        self._pool_restarts += 1

    def pool_task_retry(self) -> None:
        """A victim task was re-dispatched after a pool restart."""
        self._pool_task_retries += 1

    def degraded_request(self) -> None:
        """A pooled task ran inline because worker execution was unavailable."""
        self._degraded_requests += 1

    def deadline_timeout(self) -> None:
        """A request exceeded the per-request deadline and was answered 504."""
        self._deadline_timeouts += 1

    def stream_opened(self) -> None:
        """An NDJSON streaming response committed (headers sent)."""
        self._streams_opened += 1

    def stream_row(self) -> None:
        """One NDJSON row was handed to the transport layer."""
        self._stream_rows += 1

    @property
    def pool_depth(self) -> int:
        """Current sweep-pool queue depth (running + queued tasks)."""
        return self._pool_depth

    @property
    def pool_restarts(self) -> int:
        """Total broken-pool restarts since boot."""
        return self._pool_restarts

    # ------------------------------------------------------------------ #

    def mean_batch_size(self) -> float:
        """Mean coalesced-batch size (0 before the first flush)."""
        if self._batches == 0:
            return 0.0
        return self._batched_requests / self._batches

    def snapshot(self) -> Dict[str, object]:
        """The ``GET /metrics`` body: every counter, JSON-serializable."""
        return {
            "requests_total": self._requests_total,
            "requests_by_endpoint": dict(self._by_endpoint),
            "responses_by_status": dict(self._by_status),
            "latency_ms": self._latency.snapshot(),
            "coalesce": {
                "batches": self._batches,
                "requests": self._batched_requests,
                "mean_batch_size": self.mean_batch_size(),
                "max_batch_size": self._max_batch,
            },
            "ebar_cache": {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
            },
            "result_cache": {
                "hits": self._result_cache_hits,
                "misses": self._result_cache_misses,
            },
            "pool": {
                "depth": self._pool_depth,
                "peak_depth": self._pool_peak_depth,
                "completed": self._pool_completed,
                "rejected": self._pool_rejected,
                "restarts": self._pool_restarts,
                "task_retries": self._pool_task_retries,
                "degraded_requests": self._degraded_requests,
            },
            "streams": {
                "opened": self._streams_opened,
                "rows": self._stream_rows,
            },
            "deadline_timeouts": self._deadline_timeouts,
        }
