"""Pure work functions executed by the service (inline or in worker processes).

Every function here is a deterministic, module-level (hence picklable)
function of its request dataclass, returning plain JSON-serializable
primitives.  The same functions run inline (``workers=0``), inside a
coalesced batch on the event loop, or in a ``ProcessPoolExecutor`` worker —
which is what makes pooled and inline responses bit-identical by
construction.

Worker processes memoize one :class:`EnergyModel` / system object per
``e_bar_b`` convention (module-level dict, rebuilt per process after fork),
so repeated sweeps do not re-solve the energy tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.beamforming.pairwise import NullSteeringPair
from repro.core.overlay import OverlayDistanceResult, OverlaySystem
from repro.core.underlay import UnderlaySystem
from repro.channel.multipath import MultipathEnvironment
from repro.energy.ebar import solve_ebar
from repro.energy.model import EnergyModel
from repro.service.schemas import (
    EbarRequest,
    EnvironmentSpec,
    InterweaveRequest,
    OverlayRequest,
    UnderlayRequest,
)

__all__ = [
    "ebar_exact",
    "overlay_rows",
    "underlay_rows",
    "interweave_delta",
    "interweave_amplitudes",
    "overlay_row_dict",
]

Row = Dict[str, object]

_MODELS: Dict[str, EnergyModel] = {}
_OVERLAYS: Dict[str, OverlaySystem] = {}
_UNDERLAYS: Dict[str, UnderlaySystem] = {}


def _model(convention: str) -> EnergyModel:
    model = _MODELS.get(convention)
    if model is None:
        model = EnergyModel(ebar_convention=convention)
        _MODELS[convention] = model
    return model


def _overlay(convention: str) -> OverlaySystem:
    system = _OVERLAYS.get(convention)
    if system is None:
        system = OverlaySystem(_model(convention))
        _OVERLAYS[convention] = system
    return system


def _underlay(convention: str) -> UnderlaySystem:
    system = _UNDERLAYS.get(convention)
    if system is None:
        system = UnderlaySystem(_model(convention))
        _UNDERLAYS[convention] = system
    return system


# --------------------------------------------------------------------- #
# /v1/ebar  (solver="exact")                                            #
# --------------------------------------------------------------------- #


def ebar_exact(request: EbarRequest) -> float:
    """``solve_ebar`` at the request point — bit-identical to a direct call."""
    return solve_ebar(
        request.p, request.b, request.mt, request.mr, convention=request.convention
    )


# --------------------------------------------------------------------- #
# /v1/overlay/feasible                                                  #
# --------------------------------------------------------------------- #


def overlay_row_dict(result: OverlayDistanceResult) -> Row:
    """One JSON row of the Figure 6 analysis; relaying is *feasible* at a
    D1 point when both reach distances are strictly positive."""
    return {
        "d1": result.d1,
        "m": result.m,
        "bandwidth": result.bandwidth,
        "p_direct": result.p_direct,
        "p_relay": result.p_relay,
        "e1": result.e1,
        "b_direct": result.b_direct,
        "d2": result.d2,
        "b_simo": result.b_simo,
        "d3": result.d3,
        "b_miso": result.b_miso,
        "feasible": bool(result.d2 > 0.0 and result.d3 > 0.0),
    }


def overlay_rows(request: OverlayRequest) -> List[Row]:
    """Algorithm 1 feasibility over the request's D1 axis (vectorized)."""
    results = _overlay(request.convention).distance_analyses(
        request.d1,
        request.m,
        request.bandwidth,
        p_direct=request.p_direct,
        p_relay=request.p_relay,
    )
    return [overlay_row_dict(result) for result in results]


# --------------------------------------------------------------------- #
# /v1/underlay/energy                                                   #
# --------------------------------------------------------------------- #


def underlay_rows(request: UnderlayRequest) -> List[Row]:
    """Algorithm 2 PA-energy accounting over the request's distance axis."""
    results = _underlay(request.convention).pa_energy_sweep(
        request.p,
        request.mt,
        request.mr,
        request.d,
        request.distances,
        request.bandwidth,
    )
    return [
        {
            "mt": result.mt,
            "mr": result.mr,
            "b": result.b,
            "d": result.d,
            "distance": result.distance,
            "total_pa": result.total_pa,
            "peak_pa": result.peak_pa,
        }
        for result in results
    ]


# --------------------------------------------------------------------- #
# /v1/interweave/pattern                                                #
# --------------------------------------------------------------------- #


def _environment(spec: Optional[EnvironmentSpec]) -> MultipathEnvironment:
    """Materialize the request's environment (LOS when absent).

    The spec's seed must already be concrete here — the service resolves
    ``seed=None`` from its ``SeedSequence.spawn`` stream *before* dispatch,
    so pooled and inline execution construct identical environments.
    """
    if spec is None:
        return MultipathEnvironment.line_of_sight()
    if spec.n_scatterers > 0 and spec.seed is None:
        raise ValueError("environment seed must be resolved before dispatch")
    return MultipathEnvironment.random_indoor(
        n_scatterers=spec.n_scatterers,
        inner_radius_m=spec.inner_radius_m,
        outer_radius_m=spec.outer_radius_m,
        echo_amplitude=spec.echo_amplitude,
        decay=spec.decay,
        center=spec.center,
        rng=spec.seed,
    )


def interweave_delta(request: InterweaveRequest) -> float:
    """The St1 phase offset the request pins down (explicit or from Pr).

    Mirrors :meth:`NullSteeringPair.delay_for_null` on the same inputs.
    """
    if request.delta is not None:
        return request.delta
    pair = NullSteeringPair(request.st1, request.st2, request.wavelength)
    return pair.delay_for_null(request.pr, exact=request.exact_null)


def interweave_amplitudes(request: InterweaveRequest) -> List[float]:
    """Algorithm 3 field magnitudes at the request's sample points.

    Evaluates the batched :meth:`MultipathEnvironment.amplitude_at` with the
    same transmitter stack and phase vector :class:`NullSteeringPair` builds,
    so each element is bit-identical to the scalar
    ``pair.amplitude_at(point, delta, environment)`` value.
    """
    delta = interweave_delta(request)
    env = _environment(request.environment)
    tx = np.stack(
        [np.asarray(request.st1, float), np.asarray(request.st2, float)]
    )
    points = np.asarray(request.points, dtype=float)
    values = env.amplitude_at(
        tx,
        points,
        request.wavelength,
        tx_phases_rad=np.array([delta, 0.0]),
        tx_amplitudes=np.asarray(request.amplitudes, float),
    )
    return [float(v) for v in np.atleast_1d(np.asarray(values))]
