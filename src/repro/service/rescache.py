"""Persistent request-hash result cache for the planning service.

Planning responses are pure functions of the request body (the kernels are
deterministic and every stochastic environment is pinned to an explicit
seed before dispatch), so a repeated request — tomorrow, or from another
shard — can be answered straight from disk.  :class:`ResultCache` keys
successful POST responses by the SHA-256 digest of the *canonical JSON*
encoding of ``(endpoint, parsed body)``: key order and whitespace never
matter, float literals round-trip exactly, so two byte-different requests
describing the same plan share one entry and the cached payload is
bit-identical to a fresh computation.

Entries are JSON files published with the same atomic tmp-then-rename
machinery as the ē_b table cache (:func:`repro.utils.fsio.atomic_write_bytes`),
fanned out over 256 two-hex-digit subdirectories so a long-lived cache
never piles every entry into one directory.  A corrupt or unreadable entry
is a silent miss.  The cache directory is versioned
(``results-v{VERSION}``), so a change to the payload contract simply
abandons old entries instead of serving them.

Caching is opt-in per server (``ServiceConfig.result_cache``; the CLI
daemon enables it) and ``REPRO_NO_CACHE=1`` force-disables it everywhere —
the same escape hatch the table cache honours.  Requests whose responses
are *not* pure functions of the body (an interweave request asking the
service to draw a fresh environment seed) are never cached; see
:meth:`cache_key`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, Optional, Union

from repro.energy.table import default_cache_dir
from repro.utils.fsio import atomic_write_bytes

__all__ = ["ResultCache", "RESULT_CACHE_VERSION", "canonical_digest"]

#: Bump when the response payload contract changes; old entries are ignored.
RESULT_CACHE_VERSION = 1

Payload = Dict[str, object]


def canonical_digest(endpoint: str, body: object) -> str:
    """SHA-256 hex digest of the canonical JSON form of one request.

    Canonical means ``sort_keys=True`` with no whitespace, so semantically
    identical bodies hash identically regardless of key order or client
    formatting.  ``body`` must already be parsed JSON (the service hashes
    the parsed object, not the raw bytes, for exactly this reason).
    """
    blob = json.dumps(
        {"endpoint": endpoint, "body": body},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "0") not in ("", "0")


class ResultCache:
    """Disk-backed response cache keyed by canonical request digests."""

    def __init__(
        self, cache_dir: Union[str, pathlib.Path, None] = None
    ) -> None:
        base = (
            pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self._dir = base / f"results-v{RESULT_CACHE_VERSION}"
        self._enabled = not _disabled_by_env()

    @property
    def enabled(self) -> bool:
        """False when ``REPRO_NO_CACHE`` disabled the cache at construction."""
        return self._enabled

    @property
    def directory(self) -> pathlib.Path:
        """The versioned directory entries live under."""
        return self._dir

    def _path(self, digest: str) -> pathlib.Path:
        return self._dir / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[Payload]:
        """The cached payload for ``digest``, or None on any kind of miss."""
        if not self._enabled:
            return None
        try:
            blob = self._path(digest).read_bytes()
        except OSError:
            return None
        try:
            entry = json.loads(blob)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None  # torn/corrupt entry: recompute and overwrite
        if not isinstance(entry, dict):
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None
        return payload

    def put(self, digest: str, payload: Payload) -> bool:
        """Atomically publish ``payload`` under ``digest``.

        Returns False (and caches nothing) when disabled or the directory
        is unwritable — the in-memory response is still served normally.
        """
        if not self._enabled:
            return False
        blob = json.dumps(
            {"v": RESULT_CACHE_VERSION, "payload": payload},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        return atomic_write_bytes(self._path(digest), blob)
