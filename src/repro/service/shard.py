"""Shard supervisor: N server processes behind one TCP port.

One asyncio event loop cannot use more than one core, so scaling the
planning service up a multi-core host means scaling *out*: the supervisor
spawns ``N`` independent server processes (shards) that all accept on the
same port and lets the kernel balance connections across them.

Two binding modes, picked automatically:

* **SO_REUSEPORT** (Linux, modern BSDs): every shard binds the shared
  ``(host, port)`` itself with ``SO_REUSEPORT``; the kernel hashes incoming
  connections over the listening sockets.  The supervisor holds a bound
  (never listening) placeholder socket so the port stays reserved across
  shard restarts.
* **Inherited listener** (fallback): the supervisor binds one listening
  socket and passes its file descriptor to every shard
  (``--listen-fd``); the shards share the single accept queue.

Supervision mirrors the worker-pool contract from
:class:`repro.service.pool.WorkerPool`: a crashed shard is replaced from a
bounded, count-based :class:`repro.service.pool.RestartBudget`; once the
budget is exhausted the fleet latches **degraded** (surviving shards keep
serving, nothing is respawned).  The supervisor itself never sleeps or
reads wall clocks — each shard gets a stdout-reader thread (for its
announce line) and a separate exit-watcher thread posting events onto the
loop.  The two must stay separate: the pipe only reaches EOF once every
forked descendant's inherited write end is gone, so exit detection gated
on the reader would hang on exactly the straggler it needs to reap.
Every shard leads its own process group, and a dead shard's group is
SIGKILLed before its replacement spawns: forked descendants (pool
workers, simulation children — even ones SIGSTOPped mid-fault) can
otherwise outlive the shard while still holding its ``SO_REUSEPORT``
listening socket, silently swallowing a share of new connections.

Because the kernel decides which shard answers any given connection, the
supervisor also runs a private loopback **admin** listener whose
``GET /healthz`` and ``GET /metrics`` fan out to every shard's own admin
port and return the aggregated view (counters summed, latency histograms
merged, per-shard liveness attached).  Each shard's seed stream is offset
by its index so two shards never hand out the same environment seed.

Chaos hook: an armed ``kill_shard`` fault plan (see
:class:`repro.service.faults.FaultInjector`) makes the supervisor SIGKILL
one live shard per count once the fleet is ready — the restart path above
is then exercised end to end.  The ``kill_shard`` key is stripped from the
plan the shards inherit, and *replacement* shards inherit no plan at all —
a count-armed fault budget belongs to the fleet boot, not to each shard
incarnation.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.service.config import ServiceConfig
from repro.service.errors import ServiceError
from repro.service.faults import FAULTS_ENV_VAR, FaultInjector
from repro.service.httpio import read_request, render_response
from repro.service.metrics import LatencyHistogram
from repro.service.pool import RestartBudget
from repro.service.schemas import error_payload
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["ShardSupervisor", "aggregate_snapshots"]

logger = logging.getLogger("repro.service")

Payload = Dict[str, object]
_Event = Tuple[str, int, Dict[str, object]]

#: How long one admin fan-out request to a shard may take (seconds).
_FANOUT_TIMEOUT_S = 5.0

#: Counters where the fleet-wide value is the max, not the sum, of shards.
_MAX_KEYS = {"max_batch_size", "peak_depth", "max_ms"}


class _Shard:
    """One supervised server process and what we know about it."""

    def __init__(self, index: int, proc: "subprocess.Popen[str]") -> None:
        self.index = index
        self.proc = proc
        self.port = 0
        self.admin_port: Optional[int] = None

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None


def _merge_sum(into: Dict[str, object], src: Dict[str, object]) -> None:
    """Recursively fold ``src``'s counters into ``into`` (sum or max)."""
    for key, value in src.items():
        if isinstance(value, dict):
            node = into.setdefault(key, {})
            if isinstance(node, dict):
                _merge_sum(node, value)
        elif isinstance(value, bool):
            into[key] = bool(into.get(key, False)) or value
        elif isinstance(value, (int, float)):
            previous = into.get(key, 0)
            base = previous if isinstance(previous, (int, float)) else 0
            if key in _MAX_KEYS:
                into[key] = max(base, value)
            else:
                into[key] = base + value
        else:
            into.setdefault(key, value)


def aggregate_snapshots(snapshots: List[Payload]) -> Payload:
    """Merge per-shard ``/metrics`` payloads into one fleet-wide view.

    Counters are summed (peaks/maxima take the max), latency histograms
    are merged bucket-wise and the quantiles re-interpolated, and derived
    ratios (mean batch size) are recomputed from the merged totals.  The
    per-shard ``health`` strings are dropped — the supervisor reports its
    own aggregate health.
    """
    merged: Payload = {}
    histogram: Optional[LatencyHistogram] = None
    for snapshot in snapshots:
        body = dict(snapshot)
        body.pop("health", None)
        latency = body.pop("latency_ms", None)
        _merge_sum(merged, body)
        if isinstance(latency, dict):
            piece = LatencyHistogram.from_snapshot(latency)
            if histogram is None:
                histogram = piece
            else:
                histogram.merge(piece)
    if histogram is not None:
        merged["latency_ms"] = histogram.snapshot()
    coalesce = merged.get("coalesce")
    if isinstance(coalesce, dict):
        batches = coalesce.get("batches")
        requests = coalesce.get("requests")
        if isinstance(batches, (int, float)) and isinstance(requests, (int, float)):
            coalesce["mean_batch_size"] = (
                requests / batches if batches else 0.0
            )
    return merged


class ShardSupervisor:
    """Spawn, balance, replace and aggregate ``N`` server shards."""

    def __init__(
        self,
        config: ServiceConfig,
        shards: int,
        max_shard_restarts: int = 3,
        reuse_port: Optional[bool] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config
        self.shards = check_positive_int(shards, "shards")
        self._budget = RestartBudget(
            check_non_negative_int(max_shard_restarts, "max_shard_restarts")
        )
        self._faults = faults if faults is not None else FaultInjector.from_env()
        if reuse_port is None:
            reuse_port = hasattr(socket, "SO_REUSEPORT")
        self._reuse_port = reuse_port
        self._port = 0
        self._placeholder: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._shards: Dict[int, _Shard] = {}
        self._degraded = False
        self._draining = False
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Created inside run(): on 3.9 a Queue binds the running loop.
        self._events: Optional["asyncio.Queue[_Event]"] = None

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The shared TCP port every shard accepts on."""
        if self._port == 0:
            raise RuntimeError("supervisor is not running")
        return self._port

    @property
    def admin_port(self) -> int:
        """The supervisor's aggregation endpoint (loopback only)."""
        if self._admin_server is None or not self._admin_server.sockets:
            raise RuntimeError("admin listener is not running")
        return int(self._admin_server.sockets[0].getsockname()[1])

    @property
    def degraded(self) -> bool:
        """True once the shard restart budget is exhausted."""
        return self._degraded

    @property
    def restarts_used(self) -> int:
        """Shard replacements performed so far."""
        return self._budget.used

    @property
    def alive_shards(self) -> int:
        """How many shard processes are currently running."""
        return sum(1 for shard in self._shards.values() if shard.alive)

    # ------------------------------------------------------------------ #
    # Socket setup                                                       #
    # ------------------------------------------------------------------ #

    def _bind(self) -> None:
        """Reserve the shared port (and, in fallback mode, the listener)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self._reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.config.host, self.config.port))
                # Bound but never listening: reserves the port without
                # receiving any of the kernel's balanced connections.
                self._placeholder = sock
            else:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((self.config.host, self.config.port))
                sock.listen(128)
                self._listen_sock = sock
        except OSError:
            sock.close()
            raise
        self._port = int(sock.getsockname()[1])

    def _close_sockets(self) -> None:
        for sock in (self._placeholder, self._listen_sock):
            if sock is not None:
                sock.close()
        self._placeholder = None
        self._listen_sock = None

    # ------------------------------------------------------------------ #
    # Child processes                                                    #
    # ------------------------------------------------------------------ #

    def _child_argv(self, index: int) -> List[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro.service",
            "--host",
            config.host,
            "--port",
            str(self._port),
            "--workers",
            str(config.workers),
            "--coalesce-ms",
            str(config.coalesce_ms),
            "--max-coalesce",
            str(config.max_coalesce),
            "--queue-limit",
            str(config.queue_limit),
            "--table-convention",
            config.table_convention,
            "--max-sweep-points",
            str(config.max_sweep_points),
            "--max-pool-restarts",
            str(config.max_pool_restarts),
            "--retry-after-s",
            str(config.retry_after_s),
            "--drain-timeout-s",
            str(config.drain_timeout_s),
            "--max-sims",
            str(config.max_sims),
            "--max-sim-nodes",
            str(config.max_sim_nodes),
            "--stream-segment-points",
            str(config.stream_segment_points),
            "--sim-stall-timeout-ms",
            str(
                0.0
                if config.sim_stall_timeout_ms is None
                else config.sim_stall_timeout_ms
            ),
            "--admin-port",
            "0",
            "--shard-index",
            str(index),
        ]
        if self._listen_sock is not None:
            argv += ["--listen-fd", str(self._listen_sock.fileno())]
        else:
            argv += ["--reuse-port"]
        if config.seed is not None:
            # Offset per shard: sibling seed streams must never collide.
            argv += ["--seed", str(config.seed + index)]
        if config.request_timeout_ms is not None:
            argv += ["--request-timeout-ms", str(config.request_timeout_ms)]
        if not config.request_log:
            argv += ["--no-request-log"]
        argv += ["--result-cache" if config.result_cache else "--no-result-cache"]
        if config.result_cache_dir is not None:
            argv += ["--result-cache-dir", config.result_cache_dir]
        return argv

    def _child_env(self, arm_faults: bool = True) -> Dict[str, str]:
        """The shard environment: importable package, no ``kill_shard``.

        ``arm_faults=False`` (replacement shards) strips the fault plan
        entirely: a count-armed plan is a per-*fleet* budget, armed once at
        boot.  If every restarted shard re-parsed the inherited env it
        would re-arm the full plan, so each fault could fire once per
        shard *incarnation* — and a client retrying through a fault storm
        could draw a fresh fault on every attempt instead of converging to
        the clean outcome the replay digest asserts.
        """
        env = dict(os.environ)
        package_root = str(pathlib.Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        if existing:
            if package_root not in existing.split(os.pathsep):
                env["PYTHONPATH"] = package_root + os.pathsep + existing
        else:
            env["PYTHONPATH"] = package_root
        if not arm_faults:
            env.pop(FAULTS_ENV_VAR, None)
            return env
        raw = env.get(FAULTS_ENV_VAR, "").strip()
        if raw:
            try:
                plan = json.loads(raw)
            except json.JSONDecodeError:
                return env  # the supervisor's own from_env already rejected it
            if isinstance(plan, dict) and "kill_shard" in plan:
                plan.pop("kill_shard")
                if plan:
                    env[FAULTS_ENV_VAR] = json.dumps(plan)
                else:
                    env.pop(FAULTS_ENV_VAR, None)
        return env

    def _spawn(self, index: int, arm_faults: bool = True) -> None:
        pass_fds: Tuple[int, ...] = ()
        if self._listen_sock is not None:
            pass_fds = (self._listen_sock.fileno(),)
        # Each shard leads its own session (and therefore process group):
        # its forked descendants — pool workers, simulation children —
        # inherit the group, so when the shard dies the supervisor can
        # SIGKILL the whole group and reap stragglers that never got a
        # chance to clean up (e.g. a sim child SIGSTOPped by a stall fault
        # before it could arm its parent-death signal; see
        # repro.service.childproc).  A stopped process still holds any
        # inherited SO_REUSEPORT listening socket, silently eating a share
        # of new connections — group SIGKILL is the only signal that
        # removes it regardless of state.
        proc = subprocess.Popen(
            self._child_argv(index),
            stdout=subprocess.PIPE,
            text=True,
            env=self._child_env(arm_faults),
            pass_fds=pass_fds,
            start_new_session=True,
        )
        shard = _Shard(index, proc)
        self._shards[index] = shard
        # Two independent watcher threads per shard.  The announce reader
        # blocks on the stdout pipe, which only reaches EOF once *every*
        # inherited write end is gone — the shard and all its forked
        # descendants.  A SIGSTOPped pre-hardening sim child never closes
        # its copy, so exit detection must not sit behind that EOF: the
        # exit watcher waits on the process directly and its group
        # SIGKILL is what finally unblocks the reader.
        threading.Thread(
            target=self._watch_announce, args=(shard,), daemon=True
        ).start()
        threading.Thread(
            target=self._watch_exit, args=(shard,), daemon=True
        ).start()

    @staticmethod
    def _reap_shard_group(pid: int) -> None:
        """SIGKILL every surviving member of a dead shard's process group.

        The group id equals the shard's pid (``start_new_session=True``),
        and the group outlives the leader while any member — a forked pool
        worker or simulation child — survives, so this works even after
        the shard itself was reaped.  No-op when the group is already
        empty or the platform has no process groups.
        """
        killpg = getattr(os, "killpg", None)
        if killpg is None:  # pragma: no cover - POSIX-only service
            return
        try:
            killpg(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass

    def _watch_announce(self, shard: _Shard) -> None:
        """Reader thread: relay the shard's ``listening`` announce line.

        Events carry the incarnation's pid so a line straggling out of a
        dead shard's pipe can never be attributed to its replacement.
        """
        stdout = shard.proc.stdout
        assert stdout is not None
        for line in stdout:
            line = line.strip()
            if not line:
                continue
            try:
                info = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(info, dict) and info.get("event") == "listening":
                info = dict(info)
                info["pid"] = shard.proc.pid
                self._post(("ready", shard.index, info))

    def _watch_exit(self, shard: _Shard) -> None:
        """Exit watcher: wait for the shard, reap its group, announce.

        Deliberately independent of the stdout reader: waiting for pipe
        EOF before ``wait()`` would deadlock on exactly the orphan this
        path exists to reap — a descendant that still holds the pipe's
        write end (and the shared listening socket) because it was
        SIGSTOPped before it could harden itself.  The group SIGKILL
        below is what closes those straggler fds and lets the reader
        thread finish.  Reaping happens *before* the exit event so a
        replacement shard never races a zombie group member still bound
        to the shared port.
        """
        shard.proc.wait()
        self._reap_shard_group(shard.proc.pid)
        self._post(
            (
                "exit",
                shard.index,
                {"returncode": shard.proc.returncode, "pid": shard.proc.pid},
            )
        )

    def _post(self, event: _Event) -> None:
        loop, events = self._loop, self._events
        if loop is not None and events is not None and not loop.is_closed():
            loop.call_soon_threadsafe(events.put_nowait, event)

    # ------------------------------------------------------------------ #
    # Aggregation admin endpoint                                         #
    # ------------------------------------------------------------------ #

    async def _fetch_json(
        self, port: int, path: str
    ) -> Optional[Tuple[int, Payload]]:
        """One ``GET`` against a shard's admin listener (None on failure)."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", port), _FANOUT_TIMEOUT_S
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(
                (
                    f"GET {path} HTTP/1.1\r\n"
                    "Host: 127.0.0.1\r\nConnection: close\r\n\r\n"
                ).encode("ascii")
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), _FANOUT_TIMEOUT_S)
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):  # pragma: no cover
                pass
        head, _, body = raw.partition(b"\r\n\r\n")
        parts = head.split(b" ", 2)
        if len(parts) < 2:
            return None
        try:
            status = int(parts[1])
            payload = json.loads(body)
        except (ValueError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        return status, payload

    def _reachable_shards(self) -> List[_Shard]:
        return [
            shard
            for shard in self._shards.values()
            if shard.alive and shard.admin_port is not None
        ]

    async def _shard_payloads(self, path: str) -> Tuple[int, List[Payload]]:
        """Fan ``path`` out to every reachable shard.

        Returns ``(failures, payloads)`` where failures counts shards that
        were unreachable or answered non-200.
        """
        shards = self._reachable_shards()
        results = await asyncio.gather(
            *(
                self._fetch_json(shard.admin_port or 0, path)
                for shard in shards
            )
        )
        payloads: List[Payload] = []
        failures = self.shards - len(shards)
        for result in results:
            if result is None or result[0] != 200:
                failures += 1
            else:
                payloads.append(result[1])
        return failures, payloads

    def _health(self, failures: int, statuses: List[object]) -> str:
        if self._draining:
            return "draining"
        if (
            self._degraded
            or failures > 0
            or any(status != "ok" for status in statuses)
        ):
            return "degraded"
        return "ok"

    def _shards_section(self) -> Payload:
        per_shard: List[Payload] = []
        for index in sorted(self._shards):
            shard = self._shards[index]
            per_shard.append(
                {
                    "shard": index,
                    "pid": shard.proc.pid,
                    "port": shard.port,
                    "admin_port": shard.admin_port,
                    "alive": shard.alive,
                }
            )
        return {
            "count": self.shards,
            "alive": self.alive_shards,
            "restarts": self._budget.used,
            "restarts_left": self._budget.left,
            "degraded": self._degraded,
            "mode": "reuseport" if self._reuse_port else "listen-fd",
            "per_shard": per_shard,
        }

    async def _admin_response(self, path: str) -> Tuple[int, Payload]:
        if path == "/healthz":
            failures, payloads = await self._shard_payloads("/healthz")
            statuses = [payload.get("status") for payload in payloads]
            return 200, {
                "status": self._health(failures, statuses),
                "shards": {
                    "count": self.shards,
                    "alive": self.alive_shards,
                    "restarts": self._budget.used,
                    "degraded": self._degraded,
                },
            }
        if path == "/metrics":
            failures, payloads = await self._shard_payloads("/metrics")
            statuses = [payload.get("health") for payload in payloads]
            merged = aggregate_snapshots(payloads)
            merged["health"] = self._health(failures, statuses)
            merged["shards"] = self._shards_section()
            return 200, merged
        return 404, error_payload(
            404,
            "not found",
            f"the supervisor only serves /healthz and /metrics, not {path}",
        )

    def _chaos_kill_shard(self) -> Tuple[int, Payload]:
        """``POST /chaos/kill_shard``: SIGKILL one live shard on demand.

        The scheduled-fault analogue of the boot-time ``kill_shard`` plan:
        a load generator calls this at a chosen request index and the
        supervisor's replacement path takes over.  Requires the explicit
        ``chaos_admin`` opt-in; refused with 403 otherwise.
        """
        if not self.config.chaos_admin:
            return 403, error_payload(
                403,
                "forbidden",
                "chaos admin endpoints are disabled; start with --chaos-admin",
            )
        victims = [s for s in self._shards.values() if s.alive]
        if not victims:
            return 409, error_payload(
                409, "conflict", "no live shard to kill"
            )
        victim = victims[-1]
        logger.warning(
            "%s",
            json.dumps(
                {"event": "chaos_kill_shard", "shard": victim.index},
                sort_keys=True,
            ),
        )
        victim.proc.kill()
        return 200, {"event": "chaos_kill_shard", "shard": victim.index}

    async def _handle_admin(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServiceError as exc:
                    writer.write(
                        render_response(
                            exc.status,
                            error_payload(exc.status, exc.reason, str(exc)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                head, _ = request
                if head.method == "POST" and head.path == "/chaos/kill_shard":
                    status, payload = self._chaos_kill_shard()
                elif head.method != "GET":
                    status, payload = 405, error_payload(
                        405,
                        "method not allowed",
                        "the supervisor admin endpoint is GET-only "
                        "(POST /chaos/kill_shard requires --chaos-admin)",
                    )
                else:
                    status, payload = await self._admin_response(head.path)
                keep_alive = head.keep_alive and not self._draining
                writer.write(
                    render_response(status, payload, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, TimeoutError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------ #
    # Run loop                                                           #
    # ------------------------------------------------------------------ #

    async def run(
        self,
        stop: Optional[asyncio.Event] = None,
        install_signal_handlers: bool = True,
        announce: bool = True,
        on_ready: Optional[Callable[["ShardSupervisor"], None]] = None,
    ) -> None:
        """Supervise the fleet until ``stop`` (or SIGTERM/SIGINT).

        Mirrors :func:`repro.service.server.serve`: binds, spawns every
        shard, waits for all of them to announce, starts the aggregation
        admin listener, prints its own ``{"event": "listening"}`` line
        (with ``shards`` and ``admin_port``), then replaces crashed shards
        from the restart budget until stopped — finally SIGTERMing the
        shards and waiting out their graceful drains.
        """
        self._loop = asyncio.get_running_loop()
        self._events = asyncio.Queue()
        stop_event = stop if stop is not None else asyncio.Event()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, stop_event.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    break
        # One-time startup work before any traffic exists: binding the
        # listeners and forking the shard fleet happen exactly once, with
        # nothing else scheduled on the loop yet.
        self._bind()  # lint: ignore[RP201]
        try:
            for index in range(self.shards):
                self._spawn(index)  # lint: ignore[RP201]
            await self._event_loop(stop_event, announce, on_ready)
        finally:
            await self._shutdown()

    async def _event_loop(
        self,
        stop_event: asyncio.Event,
        announce: bool,
        on_ready: Optional[Callable[["ShardSupervisor"], None]],
    ) -> None:
        events = self._events
        assert events is not None
        ready: Set[int] = set()
        started = False
        stop_task = asyncio.ensure_future(stop_event.wait())
        try:
            while True:
                event_task = asyncio.ensure_future(events.get())
                done, _ = await asyncio.wait(
                    {stop_task, event_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if stop_task in done:
                    event_task.cancel()
                    return
                kind, index, info = event_task.result()
                shard = self._shards.get(index)
                pid = info.get("pid")
                if (
                    shard is not None
                    and isinstance(pid, int)
                    and pid != shard.proc.pid
                ):
                    continue  # stale event from a replaced incarnation
                if kind == "ready":
                    if shard is not None:
                        shard.port = int(str(info.get("port", self._port)))
                        admin = info.get("admin_port")
                        shard.admin_port = (
                            int(str(admin)) if admin is not None else None
                        )
                    ready.add(index)
                    if not started and len(ready) == self.shards:
                        started = True
                        await self._on_fleet_ready(announce, on_ready)
                elif kind == "exit":
                    ready.discard(index)
                    # Shard replacement Popens a new process: rare (restart
                    # budget), and the supervisor loop serves only admin
                    # traffic, so the brief fork is an accepted stall.
                    if not self._on_shard_exit(index, info):  # lint: ignore[RP201]
                        return
        finally:
            stop_task.cancel()

    async def _on_fleet_ready(
        self,
        announce: bool,
        on_ready: Optional[Callable[["ShardSupervisor"], None]],
    ) -> None:
        self._admin_server = await asyncio.start_server(
            self._handle_admin,
            host="127.0.0.1",
            port=self.config.admin_port or 0,
        )
        if announce:
            print(
                json.dumps(
                    {
                        "event": "listening",
                        "host": self.config.host,
                        "port": self._port,
                        "shards": self.shards,
                        "admin_port": self.admin_port,
                    }
                ),
                flush=True,
            )
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "supervising",
                    "shards": self.shards,
                    "port": self._port,
                    "mode": "reuseport" if self._reuse_port else "listen-fd",
                },
                sort_keys=True,
            ),
        )
        # Chaos: kill one live shard per armed count, now that every
        # shard is up — the exit events drive the replacement path.
        while self._faults.take_kill_shard():
            victims = [s for s in self._shards.values() if s.alive]
            if not victims:
                break
            victim = victims[-1]
            logger.warning(
                "%s",
                json.dumps(
                    {"event": "chaos_kill_shard", "shard": victim.index},
                    sort_keys=True,
                ),
            )
            victim.proc.kill()
        if on_ready is not None:
            on_ready(self)

    def _on_shard_exit(self, index: int, info: Dict[str, object]) -> bool:
        """Replace a dead shard; False ends the run loop (fleet is gone)."""
        if self._draining:
            return True
        logger.warning(
            "%s",
            json.dumps(
                {
                    "event": "shard_exit",
                    "shard": index,
                    "returncode": info.get("returncode"),
                },
                sort_keys=True,
            ),
        )
        if self._budget.spend():
            # Replacement shards spawn with the fault plan stripped: the
            # count-armed plan is a fleet-boot budget, not a per-
            # incarnation one (see _child_env).
            self._spawn(index, arm_faults=False)
            logger.warning(
                "%s",
                json.dumps(
                    {
                        "event": "shard_restart",
                        "shard": index,
                        "restarts_used": self._budget.used,
                        "restarts_left": self._budget.left,
                    },
                    sort_keys=True,
                ),
            )
            return True
        self._degraded = True
        if self.alive_shards == 0:
            logger.error(
                "%s",
                json.dumps({"event": "all_shards_dead"}, sort_keys=True),
            )
            return False
        logger.warning(
            "%s",
            json.dumps(
                {"event": "shard_budget_exhausted", "alive": self.alive_shards},
                sort_keys=True,
            ),
        )
        return True

    async def _shutdown(self) -> None:
        self._draining = True
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
            # Single-shot teardown: _shutdown runs once after the signal
            # handler flips _draining, so no concurrent task re-reads it.
            self._admin_server = None  # lint: ignore[RP206]
        for shard in self._shards.values():
            if shard.alive:
                shard.proc.terminate()
        try:
            await asyncio.wait_for(
                self._wait_all_exited(),
                timeout=self.config.drain_timeout_s + 2.0,
            )
        except asyncio.TimeoutError:
            for shard in self._shards.values():
                if shard.alive:  # pragma: no cover - drain overrun
                    shard.proc.kill()
            await self._wait_all_exited()
        for shard in self._shards.values():
            self._reap_shard_group(shard.proc.pid)
        self._close_sockets()
        logger.info(
            "%s", json.dumps({"event": "supervisor_stopped"}, sort_keys=True)
        )

    async def _wait_all_exited(self) -> None:
        events = self._events
        assert events is not None
        while any(shard.alive for shard in self._shards.values()):
            await events.get()
