"""Chaos-injection hooks for fault-tolerance testing (off by default).

:class:`FaultInjector` is a small, deterministic switchboard the serving
stack consults at three points:

* :meth:`maybe_kill_worker` — SIGKILL one live worker process of the sweep
  pool (exercises ``BrokenProcessPool`` supervision and restart budgets);
* :meth:`take_kill_shard` — tell the shard supervisor to SIGKILL one live
  shard process once the fleet is ready (exercises shard replacement);
* :meth:`request_delay_s` — extra event-loop latency awaited inside the
  request deadline scope (exercises 504 deadline handling);
* :meth:`take_abort` — truncate the HTTP response mid-body and close the
  connection (exercises client transport-error mapping and retries).

Every fault is *armed* with an explicit count and decrements as it fires,
so chaos tests are reproducible without any randomness.  A freshly built
injector (and therefore every production deployment) is completely inert:
all hooks are constant-time no-ops until something arms them, either
programmatically or through the ``REPRO_SERVICE_FAULTS`` environment
variable — a JSON object such as::

    REPRO_SERVICE_FAULTS='{"kill_worker": 1, "delay_ms": 250,
                           "delay_times": 2, "abort": 1,
                           "paths": ["/v1/underlay/energy"]}'

which the service reads once at boot (see :class:`PlanningService`).
"""

from __future__ import annotations

import json
import os
import signal
from typing import Mapping, Optional, Tuple

from repro.utils.validation import check_non_negative, check_non_negative_int

__all__ = ["FaultInjector", "FAULTS_ENV_VAR"]

#: Environment variable holding the boot-time fault plan (JSON object).
FAULTS_ENV_VAR = "REPRO_SERVICE_FAULTS"


class FaultInjector:
    """Deterministic, count-armed fault switchboard (inert by default)."""

    def __init__(self) -> None:
        self._kill_worker = 0
        self._kill_shard = 0
        self._delay_s = 0.0
        self._delay_times = 0
        self._abort = 0
        self._paths: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> "FaultInjector":
        """Build an injector from ``REPRO_SERVICE_FAULTS`` (inert if unset).

        Raises
        ------
        ValueError
            When the variable is set but is not a valid JSON fault plan —
            a misconfigured chaos run should fail at boot, not silently
            serve without faults.
        """
        env = os.environ if environ is None else environ
        raw = env.get(FAULTS_ENV_VAR, "").strip()
        injector = cls()
        if not raw:
            return injector
        try:
            plan = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{FAULTS_ENV_VAR} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(plan, dict):
            raise ValueError(f"{FAULTS_ENV_VAR} must be a JSON object")
        known = {
            "kill_worker",
            "kill_shard",
            "delay_ms",
            "delay_times",
            "abort",
            "paths",
        }
        unknown = sorted(set(plan) - known)
        if unknown:
            raise ValueError(
                f"{FAULTS_ENV_VAR} has unknown key(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        paths = plan.get("paths")
        if paths is not None:
            if not isinstance(paths, list) or not all(
                isinstance(p, str) for p in paths
            ):
                raise ValueError(f"{FAULTS_ENV_VAR} 'paths' must be a string list")
        if "kill_worker" in plan:
            injector.arm_kill_worker(_as_count(plan["kill_worker"], "kill_worker"))
        if "kill_shard" in plan:
            injector.arm_kill_shard(_as_count(plan["kill_shard"], "kill_shard"))
        delay_ms = plan.get("delay_ms")
        if delay_ms is not None:
            if isinstance(delay_ms, bool) or not isinstance(delay_ms, (int, float)):
                raise ValueError(f"{FAULTS_ENV_VAR} 'delay_ms' must be a number")
            injector.arm_delay(
                float(delay_ms) / 1000.0,
                times=_as_count(plan.get("delay_times", 1), "delay_times"),
                paths=None if paths is None else tuple(paths),
            )
        if "abort" in plan:
            injector.arm_abort(
                _as_count(plan["abort"], "abort"),
                paths=None if paths is None else tuple(paths),
            )
        return injector

    # ------------------------------------------------------------------ #
    # Arming                                                             #
    # ------------------------------------------------------------------ #

    def arm_kill_worker(self, times: int = 1) -> None:
        """SIGKILL one pool worker on each of the next ``times`` dispatches."""
        self._kill_worker = check_non_negative_int(times, "times")

    def arm_kill_shard(self, times: int = 1) -> None:
        """SIGKILL ``times`` shard processes once the fleet is ready.

        Consumed by the *shard supervisor* (see :mod:`repro.service.shard`),
        not by individual servers: after every shard has announced, the
        supervisor kills one live shard per armed count — exercising
        shard replacement and the restart budget end to end.
        """
        self._kill_shard = check_non_negative_int(times, "times")

    def arm_delay(
        self,
        delay_s: float,
        times: int = 1,
        paths: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Inject ``delay_s`` of latency into the next ``times`` requests."""
        self._delay_s = check_non_negative(delay_s, "delay_s")
        self._delay_times = check_non_negative_int(times, "times")
        if paths is not None:
            self._paths = tuple(paths)

    def arm_abort(
        self, times: int = 1, paths: Optional[Tuple[str, ...]] = None
    ) -> None:
        """Truncate and drop the connection on the next ``times`` responses."""
        self._abort = check_non_negative_int(times, "times")
        if paths is not None:
            self._paths = tuple(paths)

    @property
    def armed(self) -> bool:
        """True while any fault remains armed."""
        return bool(
            self._kill_worker or self._kill_shard or self._delay_times or self._abort
        )

    def _matches(self, path: str) -> bool:
        return self._paths is None or path in self._paths

    # ------------------------------------------------------------------ #
    # Hooks (called by the serving stack; no-ops unless armed)           #
    # ------------------------------------------------------------------ #

    def maybe_kill_worker(self, executor: object) -> bool:
        """SIGKILL one live worker of ``executor`` if the fault is armed.

        ``executor`` is a ``ProcessPoolExecutor``; its worker table is
        reached through the private ``_processes`` attribute, which is as
        close as the stdlib lets a chaos hook get to "a machine reboots
        under a shard".  Returns whether a worker was killed.
        """
        if self._kill_worker <= 0:
            return False
        processes = getattr(executor, "_processes", None)
        if not processes:
            return False
        self._kill_worker -= 1
        pid = next(iter(processes))
        os.kill(pid, signal.SIGKILL)
        return True

    def take_kill_shard(self) -> bool:
        """Whether the supervisor should kill one shard now (consumes one)."""
        if self._kill_shard <= 0:
            return False
        self._kill_shard -= 1
        return True

    def request_delay_s(self, path: str) -> float:
        """Latency to inject into this request (0.0 when unarmed)."""
        if self._delay_times <= 0 or not self._matches(path):
            return 0.0
        self._delay_times -= 1
        return self._delay_s

    def take_abort(self, path: str) -> bool:
        """Whether to abort this response mid-body (consumes one count)."""
        if self._abort <= 0 or not self._matches(path):
            return False
        self._abort -= 1
        return True


def _as_count(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{FAULTS_ENV_VAR} {name!r} must be an integer")
    return check_non_negative_int(value, name)
