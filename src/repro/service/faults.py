"""Chaos-injection hooks for fault-tolerance testing (off by default).

:class:`FaultInjector` is a small, deterministic switchboard the serving
stack consults at three points:

* :meth:`maybe_kill_worker` — SIGKILL one live worker process of the sweep
  pool (exercises ``BrokenProcessPool`` supervision and restart budgets);
* :meth:`take_kill_shard` — tell the shard supervisor to SIGKILL one live
  shard process once the fleet is ready (exercises shard replacement);
* :meth:`request_delay_s` — extra event-loop latency awaited inside the
  request deadline scope (exercises 504 deadline handling);
* :meth:`take_abort` — truncate the HTTP response mid-body and close the
  connection (exercises client transport-error mapping and retries).

Stream-aware faults reach the PR 9 NDJSON layer:

* :meth:`take_sim_fault` — SIGKILL (``kill_sim_child``) or SIGSTOP
  (``stall_sim``) the dedicated ``/v1/simulate`` child after it has
  produced ``after_rows`` rows (exercises the terminal error row and the
  stall deadline);
* :meth:`take_truncate_stream` — cut a committed NDJSON response mid-row
  after ``after_rows`` complete rows (exercises client truncation
  detection, status 599);
* :meth:`take_drop_client` — close the connection without writing a
  single response byte (exercises the client's transport-failure path).

Every fault is *armed* with an explicit count and decrements as it fires,
so chaos tests are reproducible without any randomness.  Per-request
faults additionally take a ``skip`` count — ignore the first N matching
requests, then start firing — so a fault plan can target "the k-th
request" deterministically.  A freshly built injector (and therefore
every production deployment) is completely inert: all hooks are
constant-time no-ops until something arms them, either programmatically
or through the ``REPRO_SERVICE_FAULTS`` environment variable — a JSON
object such as::

    REPRO_SERVICE_FAULTS='{"kill_worker": 1, "delay_ms": 250,
                           "delay_times": 2, "abort": 1,
                           "truncate_stream": 1, "truncate_stream_skip": 3,
                           "paths": ["/v1/underlay/energy"]}'

which the service reads once at boot (see :class:`PlanningService`).

Path scoping is *per fault*: each arm call's ``paths`` applies to that
fault alone, and re-arming with ``paths=None`` clears the scope back to
"any path" (the env plan's single ``paths`` list simply scopes every
path-matched fault it arms the same way).
"""

from __future__ import annotations

import json
import os
import signal
from typing import Mapping, Optional, Tuple

from repro.utils.validation import check_non_negative, check_non_negative_int

__all__ = ["FaultInjector", "FAULTS_ENV_VAR"]

#: Environment variable holding the boot-time fault plan (JSON object).
FAULTS_ENV_VAR = "REPRO_SERVICE_FAULTS"


class FaultInjector:
    """Deterministic, count-armed fault switchboard (inert by default)."""

    def __init__(self) -> None:
        self._kill_worker = 0
        self._kill_shard = 0
        self._delay_s = 0.0
        self._delay_times = 0
        self._abort = 0
        self._abort_skip = 0
        self._kill_sim_child = 0
        self._kill_sim_child_after_rows = 0
        self._stall_sim = 0
        self._stall_sim_after_rows = 0
        self._truncate_stream = 0
        self._truncate_stream_after_rows = 1
        self._truncate_stream_skip = 0
        self._drop_client = 0
        self._drop_client_skip = 0
        self._delay_paths: Optional[Tuple[str, ...]] = None
        self._abort_paths: Optional[Tuple[str, ...]] = None
        self._truncate_stream_paths: Optional[Tuple[str, ...]] = None
        self._drop_client_paths: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> "FaultInjector":
        """Build an injector from ``REPRO_SERVICE_FAULTS`` (inert if unset).

        Raises
        ------
        ValueError
            When the variable is set but is not a valid JSON fault plan —
            a misconfigured chaos run should fail at boot, not silently
            serve without faults.
        """
        env = os.environ if environ is None else environ
        raw = env.get(FAULTS_ENV_VAR, "").strip()
        injector = cls()
        if not raw:
            return injector
        try:
            plan = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{FAULTS_ENV_VAR} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(plan, dict):
            raise ValueError(f"{FAULTS_ENV_VAR} must be a JSON object")
        known = {
            "kill_worker",
            "kill_shard",
            "delay_ms",
            "delay_times",
            "abort",
            "abort_skip",
            "kill_sim_child",
            "kill_sim_child_after_rows",
            "stall_sim",
            "stall_sim_after_rows",
            "truncate_stream",
            "truncate_stream_after_rows",
            "truncate_stream_skip",
            "drop_client",
            "drop_client_skip",
            "paths",
        }
        unknown = sorted(set(plan) - known)
        if unknown:
            raise ValueError(
                f"{FAULTS_ENV_VAR} has unknown key(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        paths = plan.get("paths")
        if paths is not None:
            if not isinstance(paths, list) or not all(
                isinstance(p, str) for p in paths
            ):
                raise ValueError(f"{FAULTS_ENV_VAR} 'paths' must be a string list")
        if "kill_worker" in plan:
            injector.arm_kill_worker(_as_count(plan["kill_worker"], "kill_worker"))
        if "kill_shard" in plan:
            injector.arm_kill_shard(_as_count(plan["kill_shard"], "kill_shard"))
        delay_ms = plan.get("delay_ms")
        if delay_ms is not None:
            if isinstance(delay_ms, bool) or not isinstance(delay_ms, (int, float)):
                raise ValueError(f"{FAULTS_ENV_VAR} 'delay_ms' must be a number")
            injector.arm_delay(
                float(delay_ms) / 1000.0,
                times=_as_count(plan.get("delay_times", 1), "delay_times"),
                paths=None if paths is None else tuple(paths),
            )
        if "abort" in plan:
            injector.arm_abort(
                _as_count(plan["abort"], "abort"),
                paths=None if paths is None else tuple(paths),
                skip=_as_count(plan.get("abort_skip", 0), "abort_skip"),
            )
        if "kill_sim_child" in plan:
            injector.arm_kill_sim_child(
                _as_count(plan["kill_sim_child"], "kill_sim_child"),
                after_rows=_as_count(
                    plan.get("kill_sim_child_after_rows", 0),
                    "kill_sim_child_after_rows",
                ),
            )
        if "stall_sim" in plan:
            injector.arm_stall_sim(
                _as_count(plan["stall_sim"], "stall_sim"),
                after_rows=_as_count(
                    plan.get("stall_sim_after_rows", 0), "stall_sim_after_rows"
                ),
            )
        if "truncate_stream" in plan:
            injector.arm_truncate_stream(
                _as_count(plan["truncate_stream"], "truncate_stream"),
                after_rows=_as_count(
                    plan.get("truncate_stream_after_rows", 1),
                    "truncate_stream_after_rows",
                ),
                paths=None if paths is None else tuple(paths),
                skip=_as_count(
                    plan.get("truncate_stream_skip", 0), "truncate_stream_skip"
                ),
            )
        if "drop_client" in plan:
            injector.arm_drop_client(
                _as_count(plan["drop_client"], "drop_client"),
                paths=None if paths is None else tuple(paths),
                skip=_as_count(plan.get("drop_client_skip", 0), "drop_client_skip"),
            )
        return injector

    # ------------------------------------------------------------------ #
    # Arming                                                             #
    # ------------------------------------------------------------------ #

    def arm_kill_worker(self, times: int = 1) -> None:
        """SIGKILL one pool worker on each of the next ``times`` dispatches."""
        self._kill_worker = check_non_negative_int(times, "times")

    def arm_kill_shard(self, times: int = 1) -> None:
        """SIGKILL ``times`` shard processes once the fleet is ready.

        Consumed by the *shard supervisor* (see :mod:`repro.service.shard`),
        not by individual servers: after every shard has announced, the
        supervisor kills one live shard per armed count — exercising
        shard replacement and the restart budget end to end.
        """
        self._kill_shard = check_non_negative_int(times, "times")

    def arm_delay(
        self,
        delay_s: float,
        times: int = 1,
        paths: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Inject ``delay_s`` of latency into the next ``times`` requests."""
        self._delay_s = check_non_negative(delay_s, "delay_s")
        self._delay_times = check_non_negative_int(times, "times")
        self._delay_paths = None if paths is None else tuple(paths)

    def arm_abort(
        self,
        times: int = 1,
        paths: Optional[Tuple[str, ...]] = None,
        skip: int = 0,
    ) -> None:
        """Truncate and drop the connection on the next ``times`` responses.

        ``skip`` matching responses pass through unharmed before the fault
        starts firing.
        """
        self._abort = check_non_negative_int(times, "times")
        self._abort_skip = check_non_negative_int(skip, "skip")
        self._abort_paths = None if paths is None else tuple(paths)

    def arm_kill_sim_child(self, times: int = 1, after_rows: int = 0) -> None:
        """SIGKILL the next ``times`` simulate children mid-stream.

        Each affected stream lets ``after_rows`` rows through first, then
        kills the child process — the relay must surface a terminal
        ``{"row": "error"}`` line, never a clean end.
        """
        self._kill_sim_child = check_non_negative_int(times, "times")
        self._kill_sim_child_after_rows = check_non_negative_int(
            after_rows, "after_rows"
        )

    def arm_stall_sim(self, times: int = 1, after_rows: int = 0) -> None:
        """SIGSTOP the next ``times`` simulate children mid-stream.

        A stopped child produces nothing forever — the relay's stall
        deadline must fire and end the stream with a terminal error row
        within ``sim_stall_timeout_ms``.
        """
        self._stall_sim = check_non_negative_int(times, "times")
        self._stall_sim_after_rows = check_non_negative_int(
            after_rows, "after_rows"
        )

    def arm_truncate_stream(
        self,
        times: int = 1,
        after_rows: int = 1,
        paths: Optional[Tuple[str, ...]] = None,
        skip: int = 0,
    ) -> None:
        """Cut the next ``times`` committed NDJSON streams mid-row.

        After ``after_rows`` complete rows the transport writes half of
        the next encoded chunk and closes — a byte-level truncation the
        client must detect as a transport failure (599), not a clean end.
        """
        self._truncate_stream = check_non_negative_int(times, "times")
        self._truncate_stream_after_rows = check_non_negative_int(
            after_rows, "after_rows"
        )
        self._truncate_stream_skip = check_non_negative_int(skip, "skip")
        self._truncate_stream_paths = None if paths is None else tuple(paths)

    def arm_drop_client(
        self,
        times: int = 1,
        paths: Optional[Tuple[str, ...]] = None,
        skip: int = 0,
    ) -> None:
        """Close the next ``times`` connections without any response bytes."""
        self._drop_client = check_non_negative_int(times, "times")
        self._drop_client_skip = check_non_negative_int(skip, "skip")
        self._drop_client_paths = None if paths is None else tuple(paths)

    @property
    def armed(self) -> bool:
        """True while any fault remains armed."""
        return bool(
            self._kill_worker
            or self._kill_shard
            or self._delay_times
            or self._abort
            or self._kill_sim_child
            or self._stall_sim
            or self._truncate_stream
            or self._drop_client
        )

    @staticmethod
    def _matches(paths: Optional[Tuple[str, ...]], path: str) -> bool:
        return paths is None or path in paths

    # ------------------------------------------------------------------ #
    # Hooks (called by the serving stack; no-ops unless armed)           #
    # ------------------------------------------------------------------ #

    def maybe_kill_worker(self, executor: object) -> bool:
        """SIGKILL one live worker of ``executor`` if the fault is armed.

        ``executor`` is a ``ProcessPoolExecutor``; its worker table is
        reached through the private ``_processes`` attribute, which is as
        close as the stdlib lets a chaos hook get to "a machine reboots
        under a shard".  Returns whether a worker was killed.
        """
        if self._kill_worker <= 0:
            return False
        processes = getattr(executor, "_processes", None)
        if not processes:
            return False
        self._kill_worker -= 1
        pid = next(iter(processes))
        os.kill(pid, signal.SIGKILL)
        return True

    def take_kill_shard(self) -> bool:
        """Whether the supervisor should kill one shard now (consumes one)."""
        if self._kill_shard <= 0:
            return False
        self._kill_shard -= 1
        return True

    def request_delay_s(self, path: str) -> float:
        """Latency to inject into this request (0.0 when unarmed)."""
        if self._delay_times <= 0 or not self._matches(self._delay_paths, path):
            return 0.0
        self._delay_times -= 1
        return self._delay_s

    def take_abort(self, path: str) -> bool:
        """Whether to abort this response mid-body (consumes one count)."""
        if self._abort <= 0 or not self._matches(self._abort_paths, path):
            return False
        if self._abort_skip > 0:
            self._abort_skip -= 1
            return False
        self._abort -= 1
        return True

    def take_sim_fault(self) -> Optional[Tuple[str, int]]:
        """The child-process fault for the simulate stream starting now.

        Returns ``("kill" | "stall", after_rows)`` and consumes one count,
        or ``None`` when no simulate-child fault is armed.  ``kill`` wins
        when both are armed (it drains faster in tests).
        """
        if self._kill_sim_child > 0:
            self._kill_sim_child -= 1
            return ("kill", self._kill_sim_child_after_rows)
        if self._stall_sim > 0:
            self._stall_sim -= 1
            return ("stall", self._stall_sim_after_rows)
        return None

    def take_truncate_stream(self, path: str) -> Optional[int]:
        """Rows to let through before cutting this stream mid-chunk.

        ``None`` means the stream is unharmed; an int consumes one armed
        count (after the configured skips) and tells the transport how
        many complete rows to relay before writing a partial chunk and
        closing.
        """
        if self._truncate_stream <= 0 or not self._matches(
            self._truncate_stream_paths, path
        ):
            return None
        if self._truncate_stream_skip > 0:
            self._truncate_stream_skip -= 1
            return None
        self._truncate_stream -= 1
        return self._truncate_stream_after_rows

    def take_drop_client(self, path: str) -> bool:
        """Whether to close this connection without any response bytes."""
        if self._drop_client <= 0 or not self._matches(
            self._drop_client_paths, path
        ):
            return False
        if self._drop_client_skip > 0:
            self._drop_client_skip -= 1
            return False
        self._drop_client -= 1
        return True


def _as_count(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{FAULTS_ENV_VAR} {name!r} must be an integer")
    return check_non_negative_int(value, name)
