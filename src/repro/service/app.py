"""The planning service: routing, coalescing, caching and error mapping.

:class:`PlanningService` is transport-free — it maps ``(method, path,
body)`` to ``(status, payload)`` — so the same object sits behind the
asyncio TCP server, the test harness and (hypothetically) any other
transport.

Execution strategy per request:

* **single-point** requests (scalar ``d1`` / ``distance`` / ``point``, and
  table ``e_bar_b`` lookups) enter the request-coalescing scheduler:
  concurrent requests sharing a batch group are merged into one call of the
  PR-1 batch kernels and de-multiplexed.  The kernels are elementwise
  bit-identical to the scalar paths, so coalescing never changes a response.
* **sweep** requests (vector axes) and exact ``e_bar_b`` solves go to the
  bounded :class:`WorkerPool` — heavy work off the event loop, 429 when the
  queue is full.

Error mapping: :class:`ServiceError` subclasses carry their own status;
``ValueError``/``TypeError`` from the library become 400 (the request named
an impossible parameter), ``KeyError`` becomes 404 (off-grid or infeasible
table point).
"""

from __future__ import annotations

import asyncio
import json
import logging
from collections import OrderedDict
from dataclasses import replace
from typing import (
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.energy.table import EbarTable
from repro.service import work
from repro.service.coalescer import Coalescer
from repro.service.config import ServiceConfig
from repro.service.errors import (
    BadRequestError,
    DeadlineExceededError,
    MethodNotAllowedError,
    NotFoundError,
    ServiceError,
)
from repro.service.faults import FaultInjector
from repro.service.httpio import NDJSON_CONTENT_TYPE
from repro.service.metrics import Metrics
from repro.service.pool import WorkerPool
from repro.service.rescache import ResultCache, canonical_digest
from repro.service.schemas import (
    EbarRequest,
    EnvironmentSpec,
    InterweaveRequest,
    OverlayRequest,
    UnderlayRequest,
    error_payload,
    parse_ebar_request,
    parse_interweave_request,
    parse_overlay_request,
    parse_underlay_request,
)
from repro.service.simulate import (
    SimulationRunner,
    parse_simulate_request,
    simulate_rows,
)
from repro.utils.rng import as_rng, spawn_seed_sequences

__all__ = ["PlanningService", "RowStream", "ENDPOINTS", "STREAMABLE_ENDPOINTS"]

logger = logging.getLogger("repro.service")

#: Routable endpoints: ``path -> allowed method``.
ENDPOINTS: Dict[str, str] = {
    "/healthz": "GET",
    "/metrics": "GET",
    "/v1/ebar": "POST",
    "/v1/overlay/feasible": "POST",
    "/v1/underlay/energy": "POST",
    "/v1/interweave/pattern": "POST",
    "/v1/simulate": "POST",
}

#: Endpoints that stream NDJSON rows when the client sends
#: ``Accept: application/x-ndjson``; buffered JSON otherwise.
STREAMABLE_ENDPOINTS = frozenset(
    {"/v1/simulate", "/v1/overlay/feasible", "/v1/underlay/energy"}
)

#: Bounded size of the ``e_bar_b`` response cache (FIFO eviction).
EBAR_CACHE_SIZE = 4096

Payload = Dict[str, object]
Row = Dict[str, object]
Point = Tuple[float, float]

_EbarKey = Tuple[str, int, int]  # (convention, mt, mr)
_EbarItem = Tuple[float, int]  # (p, b)
_OverlayKey = Tuple[int, float, float, float, str]
_UnderlayKey = Tuple[float, int, int, float, float, str]
_InterweaveKey = Tuple[
    Point,
    Point,
    float,
    Optional[float],
    Optional[Point],
    bool,
    Point,
    Optional[EnvironmentSpec],
]


def _response_is_pure(path: str, data: object) -> bool:
    """Whether this request's response is a pure function of its body.

    The one impure case: an interweave request with a stochastic
    environment (``n_scatterers > 0``) and no explicit seed — the service
    draws a fresh seed per request, so replaying a cached response would
    freeze what is meant to be a new random environment each time.  Such
    requests bypass the persistent result cache entirely.
    """
    if path != "/v1/interweave/pattern" or not isinstance(data, dict):
        return True
    env = data.get("environment")
    if not isinstance(env, dict):
        return True
    if env.get("seed") is not None:
        return True
    return bool(env.get("n_scatterers", 6) == 0)


class RowStream:
    """A committed 200 NDJSON response: rows plus teardown bookkeeping.

    Returned by :meth:`PlanningService.handle_stream` once a streaming
    request has fully validated — from here on the transport writes the
    chunked head and relays rows.  :meth:`close` is idempotent and must
    run exactly once when the transport is done with the stream (clean
    end, client disconnect, or write failure): it closes the underlying
    async generator (killing a simulation child mid-flight if needed) and
    releases any concurrency slot via ``on_close``.
    """

    def __init__(
        self,
        rows: AsyncIterator[Row],
        on_close: Optional[Callable[[], None]] = None,
        content_type: str = NDJSON_CONTENT_TYPE,
    ) -> None:
        self.rows = rows
        self.content_type = content_type
        self._on_close = on_close
        self._closed = False

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        aclose = getattr(self.rows, "aclose", None)
        if aclose is not None:
            await aclose()
        if self._on_close is not None:
            self._on_close()


class PlanningService:
    """Everything between the HTTP layer and the repro library."""

    def __init__(
        self, config: ServiceConfig, faults: Optional[FaultInjector] = None
    ) -> None:
        self.config = config
        self.metrics = Metrics()
        self.faults = faults if faults is not None else FaultInjector.from_env()
        self.pool = WorkerPool(
            config.workers,
            config.queue_limit,
            self.metrics,
            max_restarts=config.max_pool_restarts,
            faults=self.faults,
        )
        self.sims = SimulationRunner(config.max_sims, self.metrics, self.faults)
        self._draining = False
        self._result_cache: Optional[ResultCache] = None
        if config.result_cache:
            cache = ResultCache(config.result_cache_dir)
            if cache.enabled:  # REPRO_NO_CACHE wins over the config flag
                self._result_cache = cache
        self._tables: Dict[str, EbarTable] = {}
        self._ebar_cache: "OrderedDict[Tuple[str, str, float, int, int, int], float]"
        self._ebar_cache = OrderedDict()
        base_seed = (
            config.seed
            if config.seed is not None
            else int(as_rng(None).integers(0, 2**63 - 1))
        )
        self._seed_root = spawn_seed_sequences(base_seed, 1)[0]

        window = config.coalesce_window_s
        batch_hook = self.metrics.observe_batch
        self._ebar_coalescer: Coalescer[_EbarKey, _EbarItem, float] = Coalescer(
            self._ebar_batch, window, config.max_coalesce, batch_hook
        )
        self._overlay_coalescer: Coalescer[_OverlayKey, float, Row] = Coalescer(
            self._overlay_batch, window, config.max_coalesce, batch_hook
        )
        self._underlay_coalescer: Coalescer[_UnderlayKey, float, Row] = Coalescer(
            self._underlay_batch, window, config.max_coalesce, batch_hook
        )
        self._interweave_coalescer: Coalescer[_InterweaveKey, Point, float] = Coalescer(
            self._interweave_batch, window, config.max_coalesce, batch_hook
        )

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def preload(self) -> None:
        """Solve (or load) the default-convention table before serving."""
        self._table(self.config.table_convention)

    def mark_draining(self) -> None:
        """Flip the readiness view to ``draining`` (graceful-shutdown entry)."""
        self._draining = True

    def health_status(self) -> str:
        """The readiness view served by ``/healthz``.

        ``draining`` once graceful shutdown started, ``degraded`` while the
        worker pool's restart budget is exhausted (sweeps run inline on the
        event loop), ``ok`` otherwise.
        """
        if self._draining:
            return "draining"
        if self.pool.degraded:
            return "degraded"
        return "ok"

    def flush(self) -> None:
        """Flush every open coalescing window (graceful-drain path)."""
        self._ebar_coalescer.flush_all()
        self._overlay_coalescer.flush_all()
        self._underlay_coalescer.flush_all()
        self._interweave_coalescer.flush_all()

    def close(self) -> None:
        """Flush pending batches and release the worker pool."""
        self.flush()
        self.pool.shutdown()

    def _table(self, convention: str) -> EbarTable:
        table = self._tables.get(convention)
        if table is None:
            table = EbarTable(convention=convention)
            self._tables[convention] = table
        return table

    # ------------------------------------------------------------------ #
    # Request entry point                                                #
    # ------------------------------------------------------------------ #

    async def handle(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Payload]:
        """One request in, ``(status, JSON-payload)`` out.  Never raises."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.metrics.record_request(path)
        try:
            status, payload = await self._dispatch_with_deadline(method, path, body)
        except DeadlineExceededError as exc:
            self.metrics.deadline_timeout()
            status, payload = exc.status, self._error_body(
                exc.status, exc.reason, str(exc)
            )
        except ServiceError as exc:
            status, payload = exc.status, self._error_body(
                exc.status, exc.reason, str(exc)
            )
        except (ValueError, TypeError) as exc:
            status, payload = 400, error_payload(400, "bad request", str(exc))
        except KeyError as exc:
            detail = exc.args[0] if exc.args else str(exc)
            status, payload = 404, error_payload(404, "not found", str(detail))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - defensive 500 path
            logger.exception("internal error serving %s %s", method, path)
            status, payload = 500, error_payload(500, "internal error", str(exc))
        latency_ms = (loop.time() - started) * 1000.0
        self.metrics.record_response(status, latency_ms)
        if self.config.request_log:
            logger.info(
                "%s",
                json.dumps(
                    {
                        "event": "request",
                        "method": method,
                        "path": path,
                        "status": status,
                        "latency_ms": round(latency_ms, 3),
                    },
                    sort_keys=True,
                ),
            )
        return status, payload

    async def _dispatch_with_deadline(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Payload]:
        """Run one request under the configured per-request deadline.

        Chaos latency (if armed) is injected *inside* the deadline scope,
        so an injected stall is cancelled and surfaced as 504 exactly like
        a genuinely slow sweep.  ``asyncio.wait_for`` cancels the handler
        coroutine at the deadline; a task already running inside a worker
        process finishes there and is discarded (processes cannot be
        preempted mid-compute), but the event loop and the connection are
        freed immediately.
        """
        timeout_s = self.config.request_timeout_s
        delay_s = self.faults.request_delay_s(path)
        if timeout_s is None:
            return await self._run_request(method, path, body, delay_s)
        try:
            return await asyncio.wait_for(
                self._run_request(method, path, body, delay_s), timeout_s
            )
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                f"request exceeded the {timeout_s * 1000.0:g} ms deadline "
                "and was cancelled"
            ) from None

    async def _run_request(
        self, method: str, path: str, body: bytes, delay_s: float
    ) -> Tuple[int, Payload]:
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        return await self._dispatch(method, path, body)

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Payload]:
        allowed = ENDPOINTS.get(path)
        if allowed is None:
            raise NotFoundError(f"no such endpoint: {path}")
        if method != allowed:
            raise MethodNotAllowedError(f"{path} only accepts {allowed}")
        if path == "/healthz":
            return 200, {"status": self.health_status()}
        if path == "/metrics":
            snapshot = self.metrics.snapshot()
            snapshot["health"] = self.health_status()
            return 200, snapshot
        data = self._parse_json(body)
        cache = self._result_cache
        digest: Optional[str] = None
        if cache is not None and _response_is_pure(path, data):
            digest = canonical_digest(path, data)
            cached = cache.get(digest)
            if cached is not None:
                self.metrics.result_cache_hit()
                return 200, cached
            self.metrics.result_cache_miss()
        payload = await self._dispatch_post(path, data)
        if cache is not None and digest is not None:
            cache.put(digest, payload)
        return 200, payload

    async def _dispatch_post(self, path: str, data: object) -> Payload:
        """Route one parsed POST body to its endpoint handler."""
        if path == "/v1/ebar":
            return await self._handle_ebar(parse_ebar_request(data))
        if path == "/v1/overlay/feasible":
            return await self._handle_overlay(
                parse_overlay_request(data, self.config.max_sweep_points)
            )
        if path == "/v1/underlay/energy":
            return await self._handle_underlay(
                parse_underlay_request(data, self.config.max_sweep_points)
            )
        if path == "/v1/simulate":
            return await self._handle_simulate_buffered(data)
        return await self._handle_interweave(
            parse_interweave_request(data, self.config.max_sweep_points)
        )

    # ------------------------------------------------------------------ #
    # Streaming (NDJSON) request path                                     #
    # ------------------------------------------------------------------ #

    def wants_stream(self, method: str, path: str, headers: Dict[str, str]) -> bool:
        """Whether this request opts into the NDJSON streaming path."""
        if method != "POST" or path not in STREAMABLE_ENDPOINTS:
            return False
        return NDJSON_CONTENT_TYPE in headers.get("accept", "").lower()

    async def handle_stream(
        self, method: str, path: str, body: bytes
    ) -> Union[Tuple[int, Payload], RowStream]:
        """Open one streaming request.  Never raises.

        Returns a :class:`RowStream` once the request has validated and
        its first unit of work is admitted — everything that can fail
        with a clean HTTP status (parse errors, 429 backpressure, 404)
        fails *here* and comes back as an ordinary ``(status, payload)``
        for a buffered error response.  After a RowStream is returned the
        transport is committed to a 200; mid-stream failures surface as a
        terminal ``{"row": "error"}`` line followed by connection close
        without the final chunk.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.metrics.record_request(path)
        try:
            stream = await self._open_stream(path, body)
        except ServiceError as exc:
            status, payload = exc.status, self._error_body(
                exc.status, exc.reason, str(exc)
            )
        except (ValueError, TypeError) as exc:
            status, payload = 400, error_payload(400, "bad request", str(exc))
        except KeyError as exc:
            detail = exc.args[0] if exc.args else str(exc)
            status, payload = 404, error_payload(404, "not found", str(detail))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - defensive 500 path
            logger.exception("internal error opening stream %s", path)
            status, payload = 500, error_payload(500, "internal error", str(exc))
        else:
            self.metrics.stream_opened()
            # Latency of a streamed response = time to commit (headers
            # ready), not time to drain the whole stream.
            self.metrics.record_response(200, (loop.time() - started) * 1000.0)
            return stream
        self.metrics.record_response(status, (loop.time() - started) * 1000.0)
        return status, payload

    async def _open_stream(self, path: str, body: bytes) -> RowStream:
        data = self._parse_json(body)
        if path == "/v1/simulate":
            spec = parse_simulate_request(data, self.config.max_sim_nodes)
            self.sims.acquire()
            rows = self.sims.stream(spec, self.config.sim_stall_timeout_s)
            return RowStream(self._count_rows(rows), on_close=self.sims.release)

        # Sweep endpoints: serve straight from the persistent result cache
        # when the identical body was answered before, else compute in
        # pool-sized segments and flush each one as it lands.
        cache = self._result_cache
        digest: Optional[str] = None
        if cache is not None:
            digest = canonical_digest(path, data)
            cached = cache.get(digest)
            if cached is not None:
                self.metrics.result_cache_hit()
                return RowStream(self._count_rows(self._stream_cached(cached)))
            self.metrics.result_cache_miss()
        if path == "/v1/overlay/feasible":
            overlay = parse_overlay_request(data, self.config.max_sweep_points)
            segments = self._segment_axis(overlay.d1)
            run = self._overlay_segment_runner(overlay)
        else:
            underlay = parse_underlay_request(data, self.config.max_sweep_points)
            segments = self._segment_axis(underlay.distances)
            run = self._underlay_segment_runner(underlay)

        # The first segment is admitted *before* committing to a 200, so
        # backpressure (429) and axis errors still get clean JSON replies.
        first = await run(segments[0])
        rows = self._stream_sweep(first, segments[1:], run, digest)
        return RowStream(self._count_rows(rows))

    def _segment_axis(
        self, axis: Tuple[float, ...]
    ) -> List[Tuple[float, ...]]:
        size = self.config.stream_segment_points
        return [axis[i : i + size] for i in range(0, len(axis), size)]

    def _overlay_segment_runner(
        self, request: OverlayRequest
    ) -> Callable[[Tuple[float, ...]], Awaitable[List[Row]]]:
        def run(axis: Tuple[float, ...]) -> Awaitable[List[Row]]:
            return self.pool.submit(
                work.overlay_rows, replace(request, d1=axis, scalar=False)
            )

        return run

    def _underlay_segment_runner(
        self, request: UnderlayRequest
    ) -> Callable[[Tuple[float, ...]], Awaitable[List[Row]]]:
        def run(axis: Tuple[float, ...]) -> Awaitable[List[Row]]:
            return self.pool.submit(
                work.underlay_rows, replace(request, distances=axis, scalar=False)
            )

        return run

    async def _stream_cached(self, cached: Payload) -> AsyncIterator[Row]:
        """Replay a cached sweep payload as the identical NDJSON stream."""
        rows = cached.get("rows")
        assert isinstance(rows, list)
        for row in rows:
            yield row
        yield {"done": True, "count": len(rows)}

    async def _stream_sweep(
        self,
        first: List[Row],
        remaining: List[Tuple[float, ...]],
        run: Callable[[Tuple[float, ...]], Awaitable[List[Row]]],
        digest: Optional[str],
    ) -> AsyncIterator[Row]:
        """Relay sweep segments; cache the assembled payload on success.

        Each segment runs under the per-request deadline (the streaming
        analogue of the buffered path's whole-request deadline); a
        deadline hit or mid-stream backpressure becomes a terminal error
        row.  The full-response cache entry is written only after every
        segment succeeded, and matches the buffered endpoint's payload
        byte for byte — so streamed and buffered requests share hits.
        """
        all_rows: List[Row] = list(first)
        for row in first:
            yield row
        timeout_s = self.config.request_timeout_s
        for segment in remaining:
            try:
                if timeout_s is None:
                    rows = await run(segment)
                else:
                    rows = await asyncio.wait_for(run(segment), timeout_s)
            except asyncio.TimeoutError:
                self.metrics.deadline_timeout()
                yield self._error_row(
                    504,
                    "stream failed",
                    f"sweep segment exceeded the {timeout_s:g} s deadline",
                )
                return
            except ServiceError as exc:
                yield self._error_row(exc.status, exc.reason, str(exc))
                return
            except (ValueError, KeyError) as exc:
                yield self._error_row(400, "bad request", str(exc))
                return
            all_rows.extend(rows)
            for row in rows:
                yield row
        cache = self._result_cache
        if cache is not None and digest is not None:
            cache.put(digest, {"rows": all_rows, "count": len(all_rows)})
        yield {"done": True, "count": len(all_rows)}

    async def _count_rows(self, rows: AsyncIterator[Row]) -> AsyncIterator[Row]:
        """Metrics wrapper: count every streamed row as it passes through."""
        async for row in rows:
            self.metrics.stream_row()
            yield row

    async def _handle_simulate_buffered(self, data: object) -> Payload:
        """`/v1/simulate` without streaming: the whole run, pool-backed.

        The rows are produced by the same pure function of the spec the
        child process runs, so buffered and streamed responses carry
        identical snapshots, summary and digest for the same body.
        """
        spec = parse_simulate_request(data, self.config.max_sim_nodes)
        rows = await self.pool.submit(simulate_rows, spec)
        return {"rows": rows[:-1], "summary": rows[-1], "count": len(rows) - 1}

    def _error_body(self, status: int, reason: str, detail: str) -> Payload:
        """A structured error payload, with the retry hint mirrored in-body.

        429/503 responses carry ``Retry-After`` as a header (see the
        transport's ``_extra_headers``); mirroring ``retry_after_s`` into
        the JSON body too means a client that only sees the payload — a
        mid-stream consumer, a logged error — still gets the backoff hint.
        """
        retry_after_s = (
            self.config.retry_after_s if status in (429, 503) else None
        )
        return error_payload(status, reason, detail, retry_after_s=retry_after_s)

    def _error_row(self, status: int, error: str, detail: str) -> Row:
        """A terminal mid-stream error line carrying its own status code.

        Streamed requests are committed to HTTP 200 before the failure
        happens, so the status that *would* have been sent rides inside
        the row — with the same in-body ``retry_after_s`` hint as a
        buffered 429/503 — and clients can map stream failures exactly
        like buffered ones.
        """
        row: Row = {"row": "error", "error": error, "detail": detail, "status": status}
        if status in (429, 503):
            row["retry_after_s"] = self.config.retry_after_s
        return row

    @staticmethod
    def _parse_json(body: bytes) -> object:
        if not body:
            raise BadRequestError("request body is empty; expected a JSON object")
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------ #
    # /v1/ebar                                                           #
    # ------------------------------------------------------------------ #

    async def _handle_ebar(self, request: EbarRequest) -> Payload:
        cache_key = (
            request.solver,
            request.convention,
            request.p,
            request.b,
            request.mt,
            request.mr,
        )
        cached = self._ebar_cache.get(cache_key)
        if cached is not None:
            self.metrics.cache_hit()
            # _table inside _ebar_payload is a process-memoized memmap open
            # (O(1) np.load after the first build); accepted on the loop.
            return self._ebar_payload(request, cached)  # lint: ignore[RP201]
        self.metrics.cache_miss()
        if request.solver == "table":
            table = self._table(request.convention)  # lint: ignore[RP201]
            for value, grid, label in (
                (request.b, table.b_values, "b"),
                (request.mt, table.mt_values, "mt"),
                (request.mr, table.mr_values, "mr"),
            ):
                if value not in grid:
                    raise NotFoundError(f"{label}={value} not on the table grid")
            e_bar = await self._ebar_coalescer.submit(
                (request.convention, request.mt, request.mr),
                (request.p, request.b),
            )
        else:
            e_bar = await self.pool.submit(work.ebar_exact, request)
        self._ebar_cache[cache_key] = e_bar
        while len(self._ebar_cache) > EBAR_CACHE_SIZE:
            self._ebar_cache.popitem(last=False)
        # Same memoized-table access as the cache-hit path above.
        return self._ebar_payload(request, e_bar)  # lint: ignore[RP201]

    def _ebar_payload(self, request: EbarRequest, e_bar: float) -> Payload:
        payload: Payload = {
            "e_bar": e_bar,
            "p": request.p,
            "b": request.b,
            "mt": request.mt,
            "mr": request.mr,
            "solver": request.solver,
            "convention": request.convention,
        }
        if request.solver == "table":
            grid = self._table(request.convention).p_values
            payload["p_grid"] = min(grid, key=lambda g: abs(g - request.p))
        return payload

    def _ebar_batch(
        self, key: _EbarKey, items: Sequence[_EbarItem]
    ) -> List[Union[float, Exception]]:
        """Coalesced table lookups: one vectorized grid read per batch."""
        convention, mt, mr = key
        table = self._table(convention)
        p = np.array([item[0] for item in items], dtype=float)
        b = np.array([item[1] for item in items], dtype=int)
        values = np.atleast_1d(np.asarray(table.lookup(p, b, mt, mr), dtype=float))
        results: List[Union[float, Exception]] = []
        for (p_req, b_req), value in zip(items, values):
            if np.isnan(value):
                p_grid = min(table.p_values, key=lambda g: abs(g - p_req))
                results.append(
                    NotFoundError(f"grid point p={p_grid}, b={b_req} is infeasible")
                )
            else:
                results.append(float(value))
        return results

    # ------------------------------------------------------------------ #
    # /v1/overlay/feasible                                               #
    # ------------------------------------------------------------------ #

    async def _handle_overlay(self, request: OverlayRequest) -> Payload:
        if request.scalar:
            key: _OverlayKey = (
                request.m,
                request.bandwidth,
                request.p_direct,
                request.p_relay,
                request.convention,
            )
            rows = [await self._overlay_coalescer.submit(key, request.d1[0])]
        else:
            rows = await self.pool.submit(work.overlay_rows, request)
        return {"rows": rows, "count": len(rows)}

    def _overlay_batch(
        self, key: _OverlayKey, items: Sequence[float]
    ) -> List[Union[Row, Exception]]:
        m, bandwidth, p_direct, p_relay, convention = key

        def run(d1_values: Sequence[float]) -> List[Row]:
            return work.overlay_rows(
                OverlayRequest(
                    d1=tuple(d1_values),
                    m=m,
                    bandwidth=bandwidth,
                    p_direct=p_direct,
                    p_relay=p_relay,
                    convention=convention,
                )
            )

        return self._batch_with_fallback(items, run)

    # ------------------------------------------------------------------ #
    # /v1/underlay/energy                                                #
    # ------------------------------------------------------------------ #

    async def _handle_underlay(self, request: UnderlayRequest) -> Payload:
        if request.scalar:
            key: _UnderlayKey = (
                request.p,
                request.mt,
                request.mr,
                request.d,
                request.bandwidth,
                request.convention,
            )
            rows = [await self._underlay_coalescer.submit(key, request.distances[0])]
        else:
            rows = await self.pool.submit(work.underlay_rows, request)
        return {"rows": rows, "count": len(rows)}

    def _underlay_batch(
        self, key: _UnderlayKey, items: Sequence[float]
    ) -> List[Union[Row, Exception]]:
        p, mt, mr, d, bandwidth, convention = key

        def run(distances: Sequence[float]) -> List[Row]:
            return work.underlay_rows(
                UnderlayRequest(
                    p=p,
                    mt=mt,
                    mr=mr,
                    d=d,
                    distances=tuple(distances),
                    bandwidth=bandwidth,
                    convention=convention,
                )
            )

        return self._batch_with_fallback(items, run)

    @staticmethod
    def _batch_with_fallback(
        items: Sequence[float],
        run: Callable[[Sequence[float]], List[Row]],
    ) -> List[Union[Row, Exception]]:
        """Vectorize the whole batch; on failure, price items one by one.

        The sweep kernels raise ``ValueError`` for the *whole* axis when any
        point is infeasible; re-running per item restores exactly the
        response each request would have produced alone.
        """
        try:
            return list(run(items))
        except (ValueError, KeyError):
            results: List[Union[Row, Exception]] = []
            for item in items:
                try:
                    results.append(run([item])[0])
                except (ValueError, KeyError) as exc:
                    results.append(exc)
            return results

    # ------------------------------------------------------------------ #
    # /v1/interweave/pattern                                             #
    # ------------------------------------------------------------------ #

    async def _handle_interweave(self, request: InterweaveRequest) -> Payload:
        request = self._resolve_environment(request)
        delta = work.interweave_delta(request)
        if request.scalar:
            key: _InterweaveKey = (
                request.st1,
                request.st2,
                request.wavelength,
                request.delta,
                request.pr,
                request.exact_null,
                request.amplitudes,
                request.environment,
            )
            amplitudes = [
                await self._interweave_coalescer.submit(key, request.points[0])
            ]
        else:
            amplitudes = await self.pool.submit(work.interweave_amplitudes, request)
        payload: Payload = {
            "amplitudes": amplitudes,
            "count": len(amplitudes),
            "delta": delta,
        }
        if request.environment is not None:
            payload["seed_used"] = request.environment.seed
        return payload

    def _resolve_environment(self, request: InterweaveRequest) -> InterweaveRequest:
        """Pin the environment seed *before* dispatch.

        A stochastic environment requested without a seed gets one from the
        service's per-task ``SeedSequence.spawn`` stream, so pooled, inline
        and coalesced execution all construct the identical environment —
        and the response can echo ``seed_used`` for exact replay.
        """
        spec = request.environment
        if spec is None or spec.seed is not None or spec.n_scatterers == 0:
            return request
        child = self._seed_root.spawn(1)[0]
        seed = int(child.generate_state(1, np.uint64)[0])
        return replace(request, environment=replace(spec, seed=seed))

    def _interweave_batch(
        self, key: _InterweaveKey, items: Sequence[Point]
    ) -> List[Union[float, Exception]]:
        st1, st2, wavelength, delta, pr, exact_null, amplitudes, environment = key
        values = work.interweave_amplitudes(
            InterweaveRequest(
                st1=st1,
                st2=st2,
                wavelength=wavelength,
                points=tuple(items),
                delta=delta,
                pr=pr,
                exact_null=exact_null,
                amplitudes=amplitudes,
                environment=environment,
            )
        )
        return list(values)
