"""Bounded worker pool for heavy sweep requests.

Sweeps (vector ``d1`` / ``distances`` / ``points`` requests) are dispatched
to a :class:`concurrent.futures.ProcessPoolExecutor` so that a long overlay
grid cannot stall the event loop serving single-point lookups.  The pool is
*bounded*: at most ``queue_limit`` tasks may be in flight (running or
queued); beyond that :meth:`submit` raises :class:`OverloadedError`, which
the HTTP layer surfaces as 429 — backpressure instead of unbounded memory.

``workers=0`` runs the work function inline on the event loop: bit-identical
results (the work functions are deterministic pure functions of their
arguments), no fork cost — the right choice for tests and tiny deployments.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Optional, TypeVar

from repro.service.errors import OverloadedError
from repro.service.metrics import Metrics
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["WorkerPool"]

ResultT = TypeVar("ResultT")


class WorkerPool:
    """A depth-limited ``ProcessPoolExecutor`` front end (429 when full)."""

    def __init__(
        self,
        workers: int,
        queue_limit: int,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self._workers = check_non_negative_int(workers, "workers")
        self._queue_limit = check_positive_int(queue_limit, "queue_limit")
        self._metrics = metrics
        self._inflight = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        if self._workers > 0:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)

    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def depth(self) -> int:
        """Tasks currently in flight (running + queued)."""
        return self._inflight

    async def submit(
        self, fn: Callable[..., ResultT], *args: Any
    ) -> ResultT:
        """Run ``fn(*args)`` in the pool (or inline when ``workers=0``).

        Raises
        ------
        OverloadedError
            When ``queue_limit`` tasks are already in flight.
        """
        if self._inflight >= self._queue_limit:
            if self._metrics is not None:
                self._metrics.pool_reject()
            raise OverloadedError(
                f"sweep queue full ({self._inflight}/{self._queue_limit} in flight); "
                "retry later"
            )
        self._inflight += 1
        if self._metrics is not None:
            self._metrics.pool_enter()
        try:
            if self._executor is None:
                return fn(*args)
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._executor, fn, *args)
        finally:
            self._inflight -= 1
            if self._metrics is not None:
                self._metrics.pool_exit()

    def shutdown(self) -> None:
        """Wait for running tasks and release the worker processes."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
