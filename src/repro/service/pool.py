"""Supervised, bounded worker pool for heavy sweep requests.

Sweeps (vector ``d1`` / ``distances`` / ``points`` requests) are dispatched
to a :class:`concurrent.futures.ProcessPoolExecutor` so that a long overlay
grid cannot stall the event loop serving single-point lookups.  The pool is
*bounded*: at most ``queue_limit`` tasks may be in flight (running or
queued); beyond that :meth:`submit` raises :class:`OverloadedError`, which
the HTTP layer surfaces as 429 — backpressure instead of unbounded memory.

The pool is also *supervised*.  A killed or crashed worker process poisons
the whole ``ProcessPoolExecutor`` (every pending future fails with
``BrokenProcessPool``), so on that signal the pool

1. replaces the broken executor with a fresh one, spending one unit of a
   bounded restart budget (``max_restarts``);
2. re-dispatches the victim task once on the fresh executor;
3. if the retry breaks again — or the budget is exhausted — runs the task
   *inline* on the event loop, exactly as a ``workers=0`` pool would.

Once the restart budget is gone the pool latches into **degraded** mode
(every task inline, ``/healthz`` reports ``degraded``) rather than failing
requests forever on a machine that keeps killing workers.  The work
functions are deterministic pure functions of their arguments, so inline,
retried and pooled executions are bit-identical by construction.

``workers=0`` runs the work function inline by design: no fork cost, no
supervision needed — the right choice for tests and tiny deployments (and
*not* counted as degraded).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional, TypeVar

from repro.service.childproc import harden_child
from repro.service.errors import OverloadedError
from repro.service.faults import FaultInjector
from repro.service.metrics import Metrics
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["WorkerPool", "RestartBudget"]

ResultT = TypeVar("ResultT")


class RestartBudget:
    """A bounded, count-based supply of restarts (no clocks, no windows).

    Shared supervision primitive: the worker pool spends one unit per
    broken-executor replacement, the shard supervisor one per replaced
    shard process.  Once the budget is exhausted the owner latches into
    its degraded mode instead of restarting forever on a host that keeps
    killing children.
    """

    def __init__(self, max_restarts: int) -> None:
        self._left = check_non_negative_int(max_restarts, "max_restarts")
        self._used = 0

    @property
    def used(self) -> int:
        """Restarts performed so far."""
        return self._used

    @property
    def left(self) -> int:
        """Restarts remaining before exhaustion."""
        return self._left

    @property
    def exhausted(self) -> bool:
        """True once no restart budget remains."""
        return self._left <= 0

    def spend(self) -> bool:
        """Consume one restart; False (and no change) when exhausted."""
        if self._left <= 0:
            return False
        self._left -= 1
        self._used += 1
        return True


class WorkerPool:
    """A depth-limited, self-healing ``ProcessPoolExecutor`` front end."""

    def __init__(
        self,
        workers: int,
        queue_limit: int,
        metrics: Optional[Metrics] = None,
        max_restarts: int = 3,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._workers = check_non_negative_int(workers, "workers")
        self._queue_limit = check_positive_int(queue_limit, "queue_limit")
        self._metrics = metrics
        self._faults = faults
        self._inflight = 0
        self._budget = RestartBudget(
            check_non_negative_int(max_restarts, "max_restarts")
        )
        self._degraded = False
        self._executor: Optional[ProcessPoolExecutor] = None
        if self._workers > 0:
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers, initializer=harden_child
            )

    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def depth(self) -> int:
        """Tasks currently in flight (running + queued)."""
        return self._inflight

    @property
    def degraded(self) -> bool:
        """True once the restart budget is exhausted (tasks run inline)."""
        return self._degraded

    @property
    def restarts_used(self) -> int:
        """Broken-executor replacements performed so far."""
        return self._budget.used

    async def submit(
        self, fn: Callable[..., ResultT], *args: Any
    ) -> ResultT:
        """Run ``fn(*args)`` in the pool (or inline when ``workers=0``).

        Raises
        ------
        OverloadedError
            When ``queue_limit`` tasks are already in flight.
        """
        if self._inflight >= self._queue_limit:
            if self._metrics is not None:
                self._metrics.pool_reject()
            raise OverloadedError(
                f"sweep queue full ({self._inflight}/{self._queue_limit} in flight); "
                "retry later"
            )
        self._inflight += 1
        if self._metrics is not None:
            self._metrics.pool_enter()
        try:
            return await self._run(fn, *args)
        finally:
            # Safe interleaving: the slot is reserved (+= 1) before any
            # await, and += / -= run atomically between scheduling points.
            self._inflight -= 1  # lint: ignore[RP206]
            if self._metrics is not None:
                self._metrics.pool_exit()

    async def _run(self, fn: Callable[..., ResultT], *args: Any) -> ResultT:
        if self._executor is None:
            if self._workers > 0:  # degraded: worker execution is gone
                if self._metrics is not None:
                    self._metrics.degraded_request()
                return fn(*args)
            return fn(*args)
        loop = asyncio.get_running_loop()
        executor = self._executor
        try:
            return await self._dispatch(loop, executor, fn, *args)
        except BrokenProcessPool:
            if self._recover(executor):
                retry_executor = self._executor
                assert retry_executor is not None
                try:
                    result = await self._dispatch(loop, retry_executor, fn, *args)
                except BrokenProcessPool:
                    # The retry died too: leave the pool usable for later
                    # tasks (budget permitting) and finish this one inline.
                    self._recover(retry_executor)
                else:
                    if self._metrics is not None:
                        self._metrics.pool_task_retry()
                    return result
            if self._metrics is not None:
                self._metrics.degraded_request()
            return fn(*args)

    async def _dispatch(
        self,
        loop: asyncio.AbstractEventLoop,
        executor: ProcessPoolExecutor,
        fn: Callable[..., ResultT],
        *args: Any,
    ) -> ResultT:
        future = loop.run_in_executor(executor, fn, *args)
        if self._faults is not None:
            self._faults.maybe_kill_worker(executor)
        return await future

    def _recover(self, broken: ProcessPoolExecutor) -> bool:
        """Ensure a usable executor after ``broken`` failed.

        Returns True when ``self._executor`` is healthy again — either this
        call replaced it (spending restart budget) or a concurrent task's
        recovery already did.  Returns False once the budget is exhausted,
        latching the pool into degraded (inline) mode.
        """
        if self._degraded:
            return False
        if self._executor is not broken:
            return self._executor is not None
        if not self._budget.spend():
            self._degraded = True
            self._executor = None
            broken.shutdown(wait=False)
            return False
        broken.shutdown(wait=False)
        self._executor = ProcessPoolExecutor(
            max_workers=self._workers, initializer=harden_child
        )
        if self._metrics is not None:
            self._metrics.pool_restart()
        return True

    def shutdown(self) -> None:
        """Wait for running tasks and release the worker processes."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
