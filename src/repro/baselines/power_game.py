"""Game-theoretic underlay power control (the refs [1, 4, 5] baseline).

``N`` secondary transmit/receive pairs share the primary band.  Each SU
``i`` selects transmit power ``p_i`` in ``[0, p_max]`` to maximize the
classical priced-rate utility

    u_i(p) = log2(1 + g_ii p_i / (sigma^2 + I_i)) - price * h_i * p_i

where ``g_ji`` is the gain from transmitter ``j`` to receiver ``i``,
``I_i = sum_{j != i} g_ji p_j`` is the secondary-on-secondary interference
and ``h_i`` the gain from transmitter ``i`` to the *primary* receiver.
The linear interference price is the usual incentive to protect the PU.

Best responses are closed-form (water-filling against the price)::

    p_i* = clip( 1/(ln 2 * price * h_i) - (sigma^2 + I_i)/g_ii , 0, p_max )

and :class:`PowerControlGame` iterates them to a Nash equilibrium.

The paper's critique (Section 1) is that the price only *discourages*
interference: nothing bounds the aggregate ``sum_i h_i p_i`` at the
primary receiver, and the bound fails exactly where spatial reuse is
hardest — SU transmitters close to the PU receiver.
:func:`interference_guarantee_comparison` measures that failure rate over
random geometries and contrasts it with the cooperative MIMO paradigm's
by-construction guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry.placement import random_in_annulus, random_in_disk
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import (
    check_finite,
    check_non_negative_int,
    check_positive,
    check_positive_int,
)

__all__ = ["PowerControlGame", "GameOutcome", "interference_guarantee_comparison"]

_LN2 = np.log(2.0)


@dataclass(frozen=True)
class GameOutcome:
    """A (possibly non-converged) equilibrium of the power game."""

    powers_w: np.ndarray
    iterations: int
    converged: bool
    rates_bps_hz: np.ndarray
    pu_interference_w: float  # aggregate sum_i h_i p_i at the PU receiver

    def __post_init__(self) -> None:
        check_non_negative_int(self.iterations, "iterations")
        check_finite(self.pu_interference_w, "pu_interference_w")

    @property
    def total_power_w(self) -> float:
        return float(np.sum(self.powers_w))


class PowerControlGame:
    """Best-response dynamics for the priced power-control game.

    Parameters
    ----------
    gain_matrix:
        ``(n, n)`` link gains: ``gain_matrix[j, i]`` is transmitter ``j`` →
        receiver ``i`` (diagonal = desired links).
    pu_gains:
        ``(n,)`` gains from each SU transmitter to the primary receiver.
    noise_w:
        Receiver noise power ``sigma^2``.
    price:
        Linear interference price (per watt of interference caused at the
        PU).  Higher price → lower powers → less PU interference, at the
        cost of secondary rate.
    p_max_w:
        Per-SU power cap.
    """

    def __init__(
        self,
        gain_matrix: np.ndarray,
        pu_gains: np.ndarray,
        noise_w: float = 1e-13,
        price: float = 1e12,
        p_max_w: float = 0.1,
    ):
        g = np.asarray(gain_matrix, dtype=float)
        h = np.asarray(pu_gains, dtype=float)
        if g.ndim != 2 or g.shape[0] != g.shape[1]:
            raise ValueError("gain_matrix must be square")
        if h.shape != (g.shape[0],):
            raise ValueError("pu_gains must have one entry per SU")
        if np.any(g <= 0.0) or np.any(h <= 0.0):
            raise ValueError("all gains must be strictly positive")
        self.g = g
        self.h = h
        self.noise_w = check_positive(noise_w, "noise_w")
        self.price = check_positive(price, "price")
        self.p_max_w = check_positive(p_max_w, "p_max_w")
        self.n = g.shape[0]

    # ------------------------------------------------------------------ #

    def _interference(self, powers: np.ndarray) -> np.ndarray:
        """``I_i`` received at each SU receiver from the other SUs."""
        received = self.g.T @ powers  # total inbound power at each receiver
        return received - np.diag(self.g) * powers

    def best_response(self, powers: np.ndarray) -> np.ndarray:
        """Simultaneous (Jacobi) best responses to the current profile."""
        p = np.asarray(powers, dtype=float)
        interference = self._interference(p)
        desired = np.diag(self.g)
        ideal = 1.0 / (_LN2 * self.price * self.h) - (self.noise_w + interference) / desired
        return np.clip(ideal, 0.0, self.p_max_w)

    def utilities(self, powers: np.ndarray) -> np.ndarray:
        """Per-SU utilities at a power profile."""
        p = np.asarray(powers, dtype=float)
        sinr = np.diag(self.g) * p / (self.noise_w + self._interference(p))
        return np.log2(1.0 + sinr) - self.price * self.h * p

    def run(
        self,
        initial_powers: Optional[np.ndarray] = None,
        max_iterations: int = 500,
        tolerance_w: float = 1e-15,
    ) -> GameOutcome:
        """Iterate best responses until the profile stops moving."""
        check_positive_int(max_iterations, "max_iterations")
        p = (
            np.full(self.n, self.p_max_w / 2.0)
            if initial_powers is None
            else np.clip(np.asarray(initial_powers, dtype=float), 0.0, self.p_max_w)
        )
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            nxt = self.best_response(p)
            if np.max(np.abs(nxt - p)) < tolerance_w:
                p = nxt
                converged = True
                break
            p = nxt
        sinr = np.diag(self.g) * p / (self.noise_w + self._interference(p))
        return GameOutcome(
            powers_w=p,
            iterations=iterations,
            converged=converged,
            rates_bps_hz=np.log2(1.0 + sinr),
            pu_interference_w=float(np.dot(self.h, p)),
        )


def _kappa_gain(distance: np.ndarray, kappa: float = 3.5, g0: float = 1e-3) -> np.ndarray:
    """Simple kappa-law link gain ``g0 * d^-kappa`` (d clipped at 1 m)."""
    d = np.maximum(np.asarray(distance, dtype=float), 1.0)
    return g0 * d ** (-kappa)


def interference_guarantee_comparison(
    n_sus_values=(2, 4, 8),
    n_geometries: int = 100,
    arena_radius_m: float = 120.0,
    pair_spacing_m: float = 15.0,
    interference_threshold_w: float = 4e-12,
    price: float = 1e12,
    rng: RngLike = None,
) -> dict:
    """The paper's Section 1 critique, quantified.

    With linear pricing, every SU's equilibrium contribution to the PU is
    ``p_i* h_i ~ 1/(ln 2 * price)`` — a constant the player chose in its
    *own* interest — so the **aggregate** interference grows linearly with
    the number of players and sails past any fixed threshold once enough
    SUs join: "an incentive to reduce the interference ... but not a
    guarantee that the aggregated interference ... is maintained below a
    certain threshold."

    For each value in ``n_sus_values`` this draws ``n_geometries`` random
    layouts (SU pairs around the PU receiver at the origin), runs the game
    to equilibrium, and records the threshold-violation rate.  The default
    threshold (4e-12 W) is calibrated so 2 players pass comfortably — the
    regime the game papers evaluate — exposing how the guarantee erodes at
    4 and collapses at 8 players.  The cooperative MIMO paradigm caps the
    *total* radiated energy by construction (Section 4) and has no such
    population dependence.

    Returns ``{n: {"violation_rate", "mean_interference_w",
    "mean_secondary_rate_bps_hz", "convergence_rate"}}`` plus a
    ``"threshold_w"`` entry.
    """
    check_positive_int(n_geometries, "n_geometries")
    check_positive(interference_threshold_w, "interference_threshold_w")
    gen = as_rng(rng)
    results: dict = {"threshold_w": interference_threshold_w}
    for n_sus in n_sus_values:
        n_sus = check_positive_int(int(n_sus), "n_sus")
        violations = 0
        interferences = []
        rates = []
        converged = 0
        for _ in range(n_geometries):
            tx = random_in_annulus(
                n_sus,
                center=(0.0, 0.0),
                inner_radius=10.0,
                outer_radius=arena_radius_m,
                rng=gen,
            )
            offsets = random_in_disk(n_sus, radius=pair_spacing_m, rng=gen)
            rx = tx + offsets

            d_tx_rx = np.linalg.norm(tx[:, None, :] - rx[None, :, :], axis=-1)
            g = _kappa_gain(d_tx_rx)
            h = _kappa_gain(np.linalg.norm(tx, axis=1))

            game = PowerControlGame(g, h, price=price)
            outcome = game.run()
            converged += int(outcome.converged)
            interferences.append(outcome.pu_interference_w)
            rates.append(float(np.mean(outcome.rates_bps_hz)))
            if outcome.pu_interference_w > interference_threshold_w:
                violations += 1
        results[n_sus] = {
            "violation_rate": violations / n_geometries,
            "mean_interference_w": float(np.mean(interferences)),
            "max_interference_w": float(np.max(interferences)),
            "mean_secondary_rate_bps_hz": float(np.mean(rates)),
            "convergence_rate": converged / n_geometries,
        }
    return results
