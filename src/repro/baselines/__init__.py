"""Baseline approaches the paper positions itself against (Section 1).

* :mod:`repro.baselines.power_game` — the game-theoretic underlay power
  control of refs [1, 4, 5]: SUs iteratively best-respond to each other's
  transmit powers.  The paper's critique — the game's utility provides "an
  incentive to reduce the interference at the PUs' receiver, but not a
  *guarantee* that the aggregated interference ... is maintained below a
  certain threshold" — is reproduced quantitatively by
  :func:`repro.baselines.power_game.interference_guarantee_comparison`.
"""

from repro.baselines.power_game import (
    GameOutcome,
    PowerControlGame,
    interference_guarantee_comparison,
)

__all__ = ["PowerControlGame", "GameOutcome", "interference_guarantee_comparison"]
