"""CSMA/CA medium-access simulation.

A slotted 802.11-DCF-style model on the discrete-event kernel: stations
with saturated or Poisson traffic sense the shared medium, defer for DIFS,
draw a random backoff from a contention window that doubles per collision
(binary exponential backoff), transmit, and expect an ACK after SIFS.
Simultaneous transmissions collide; collided frames are retried up to a
retry limit.

CoMIMONet uses this at the link layer (Section 2.1) — within a cluster the
head and members contend for the intra-cluster channel; between clusters
the heads contend on the long-haul channel.  The simulator reports
throughput, collision probability and mean access delay, and the network
examples use it to budget per-hop latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_non_negative, check_non_negative_int

__all__ = ["CsmaConfig", "MacStats", "CsmaCaSimulator"]


@dataclass(frozen=True)
class CsmaConfig:
    """Timing and backoff parameters (defaults ~802.11b long-preamble-ish).

    All durations are in microseconds.

    ``rts_cts=True`` enables the RTS/CTS virtual-carrier-sense handshake:
    every successful exchange pays the extra RTS+CTS (+2 SIFS) overhead,
    but a collision now only burns an RTS instead of the whole data frame —
    the classical trade that pays off with many contenders and long frames.
    """

    slot_us: float = 20.0
    sifs_us: float = 10.0
    difs_us: float = 50.0
    ack_us: float = 240.0
    frame_us: float = 1200.0  # payload airtime
    cw_min: int = 32
    cw_max: int = 1024
    retry_limit: int = 7
    rts_cts: bool = False
    rts_us: float = 160.0
    cts_us: float = 120.0

    def __post_init__(self) -> None:
        if min(self.slot_us, self.sifs_us, self.difs_us, self.ack_us, self.frame_us) <= 0:
            raise ValueError("all durations must be positive")
        if min(self.rts_us, self.cts_us) <= 0:
            raise ValueError("rts_us and cts_us must be positive")
        if not (1 <= self.cw_min <= self.cw_max):
            raise ValueError("need 1 <= cw_min <= cw_max")
        if self.retry_limit < 1:
            raise ValueError("retry_limit must be >= 1")

    @property
    def success_overhead_us(self) -> float:
        """Airtime of one successful exchange beyond DIFS + backoff."""
        base = self.frame_us + self.sifs_us + self.ack_us
        if self.rts_cts:
            base += self.rts_us + self.sifs_us + self.cts_us + self.sifs_us
        return base

    @property
    def collision_cost_us(self) -> float:
        """Channel time burned by a collision (before the following DIFS)."""
        return self.rts_us if self.rts_cts else self.frame_us


@dataclass
class MacStats:
    """Aggregate outcome of a CSMA/CA run."""

    delivered: int = 0
    collisions: int = 0
    dropped: int = 0
    attempts: int = 0
    busy_time_us: float = 0.0
    sim_time_us: float = 0.0
    access_delays_us: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_non_negative_int(self.delivered, "delivered")
        check_non_negative_int(self.collisions, "collisions")
        check_non_negative_int(self.dropped, "dropped")
        check_non_negative_int(self.attempts, "attempts")
        check_non_negative(self.busy_time_us, "busy_time_us")
        check_non_negative(self.sim_time_us, "sim_time_us")

    @property
    def collision_probability(self) -> float:
        """Fraction of transmission attempts that collided."""
        return self.collisions / self.attempts if self.attempts else 0.0

    @property
    def mean_access_delay_us(self) -> float:
        """Average queue-head-to-ACK delay of delivered frames."""
        return float(np.mean(self.access_delays_us)) if self.access_delays_us else 0.0

    @property
    def channel_utilization(self) -> float:
        """Fraction of time the medium carried (any) transmission."""
        return self.busy_time_us / self.sim_time_us if self.sim_time_us else 0.0

    def throughput_frames_per_s(self) -> float:
        """Delivered frames per second of simulated time."""
        if self.sim_time_us == 0.0:
            return 0.0
        return self.delivered / (self.sim_time_us * 1e-6)


class _Station:
    __slots__ = ("station_id", "cw", "retries", "backoff_slots", "frame_start_us", "has_frame")

    def __init__(self, station_id: int) -> None:
        self.station_id = station_id
        self.cw = 0  # set on frame arrival
        self.retries = 0
        self.backoff_slots = 0
        self.frame_start_us = 0.0
        self.has_frame = False


class CsmaCaSimulator:
    """Slot-synchronous CSMA/CA with binary exponential backoff.

    The implementation advances the shared medium in alternating idle-slot /
    transmission phases (the standard Bianchi-style slotted abstraction):
    at every slot boundary each backlogged station decrements its backoff;
    stations reaching zero transmit; more than one simultaneous transmitter
    is a collision.  The abstraction preserves the collision statistics of
    the full asynchronous protocol under carrier sensing.

    Parameters
    ----------
    n_stations:
        Number of contending stations.
    config:
        Protocol timing/backoff parameters.
    saturated:
        If True every station always has a frame queued (throughput upper
        bound); if False, frames arrive per-station as Poisson processes
        with rate ``arrival_rate_fps`` frames/second.
    """

    def __init__(
        self,
        n_stations: int,
        config: CsmaConfig = CsmaConfig(),
        saturated: bool = True,
        arrival_rate_fps: float = 100.0,
        rng: RngLike = None,
    ) -> None:
        if n_stations < 1:
            raise ValueError("n_stations must be >= 1")
        if arrival_rate_fps <= 0.0:
            raise ValueError("arrival_rate_fps must be positive")
        self.config = config
        self.saturated = saturated
        self.arrival_rate_fps = arrival_rate_fps
        self.rng = as_rng(rng)
        self.stations = [_Station(i) for i in range(n_stations)]
        self.stats = MacStats()

    # ------------------------------------------------------------------ #

    def _draw_backoff(self, station: _Station) -> None:
        cw = min(self.config.cw_min * (2**station.retries), self.config.cw_max)
        station.cw = cw
        station.backoff_slots = int(self.rng.integers(0, cw))

    def _arm_station(self, station: _Station, now_us: float) -> None:
        station.has_frame = True
        station.retries = 0
        station.frame_start_us = now_us
        self._draw_backoff(station)

    def run(self, duration_us: float) -> MacStats:
        """Simulate the medium for ``duration_us`` and return statistics."""
        if duration_us <= 0.0:
            raise ValueError("duration_us must be positive")
        cfg = self.config
        now = 0.0

        next_arrival = np.full(len(self.stations), np.inf)
        if self.saturated:
            for st in self.stations:
                self._arm_station(st, 0.0)
        else:
            mean_gap_us = 1e6 / self.arrival_rate_fps
            next_arrival = self.rng.exponential(mean_gap_us, len(self.stations))

        while now < duration_us:
            # Deliver any pending arrivals up to the current time.
            if not self.saturated:
                for st in self.stations:
                    if not st.has_frame and next_arrival[st.station_id] <= now:
                        self._arm_station(st, next_arrival[st.station_id])
                        next_arrival[st.station_id] = np.inf

            backlogged = [st for st in self.stations if st.has_frame]
            if not backlogged:
                if self.saturated:
                    break  # unreachable: saturated stations always re-arm
                upcoming = next_arrival.min()
                if upcoming == np.inf or upcoming >= duration_us:
                    break
                now = float(upcoming)
                continue

            # Advance to the end of the next contention decision: every
            # backlogged station waits DIFS then counts down idle slots.
            min_backoff = min(st.backoff_slots for st in backlogged)
            now += cfg.difs_us + min_backoff * cfg.slot_us
            if now >= duration_us:
                break
            transmitters = [st for st in backlogged if st.backoff_slots == min_backoff]
            for st in backlogged:
                st.backoff_slots -= min_backoff

            self.stats.attempts += len(transmitters)
            airtime = cfg.success_overhead_us
            if len(transmitters) == 1:
                st = transmitters[0]
                now += airtime
                self.stats.busy_time_us += airtime
                self.stats.delivered += 1
                self.stats.access_delays_us.append(now - st.frame_start_us)
                st.has_frame = False
                if self.saturated:
                    self._arm_station(st, now)
                else:
                    gap = float(self.rng.exponential(1e6 / self.arrival_rate_fps))
                    next_arrival[st.station_id] = now + gap
            else:
                # Collision: the colliding stations burn the collision cost
                # (whole frame, or just the RTS under RTS/CTS) and no ACK.
                now += cfg.collision_cost_us + cfg.difs_us
                self.stats.busy_time_us += cfg.collision_cost_us
                self.stats.collisions += len(transmitters)
                for st in transmitters:
                    st.retries += 1
                    if st.retries > cfg.retry_limit:
                        self.stats.dropped += 1
                        st.has_frame = False
                        if self.saturated:
                            self._arm_station(st, now)
                        else:
                            gap = float(self.rng.exponential(1e6 / self.arrival_rate_fps))
                            next_arrival[st.station_id] = now + gap
                    else:
                        self._draw_backoff(st)

        self.stats.sim_time_us = min(now, duration_us)
        return self.stats
