"""Link-layer medium access control.

Section 2.1: "Carrier Sense Multiple Access with Collision Avoidance
(CSMA/CA) is used to avoid the communication collisions at the link layer."
"""

from repro.mac.csma import CsmaCaSimulator, CsmaConfig, MacStats

__all__ = ["CsmaCaSimulator", "CsmaConfig", "MacStats"]
