"""Declarative, seed-deterministic scenario model.

A :class:`ScenarioSpec` fully determines a city-scale CRN simulation:
node count and placement arena, RandomWaypoint mobility, per-class
traffic arrival processes, battery capacities, churn rates, CoMIMONet
clustering geometry and the event-kernel choice.  All randomness in the
runtime flows from ``seed`` through named `numpy` ``SeedSequence``
streams (see :data:`STREAM_NAMES`), so two runs of an identical spec
replay bit-identically — the contract `/v1/simulate` exposes and CI's
``sim-smoke`` job asserts.

Specs parse from plain JSON mappings via :func:`scenario_from_mapping`
(strict: unknown keys are rejected) and serialise back with
:func:`scenario_to_mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "STREAM_NAMES",
    "ChurnSpec",
    "ScenarioSpec",
    "TrafficClass",
    "scenario_from_mapping",
    "scenario_to_mapping",
]

#: Order of the per-subsystem ``SeedSequence`` streams spawned from
#: ``ScenarioSpec.seed``: stream *i* feeds the named subsystem and nothing
#: else, so e.g. adding churn draws cannot perturb mobility.
STREAM_NAMES: Tuple[str, ...] = ("placement", "mobility", "traffic", "churn")


@dataclass(frozen=True)
class TrafficClass:
    """A traffic endpoint class: Poisson arrivals of fixed-size packets.

    ``fraction`` of the node population belongs to this class (class
    membership is drawn per node from the placement stream); each member
    offers packets at ``rate_per_node_s`` with exponential inter-arrival
    times.
    """

    name: str = "cbr"
    rate_per_node_s: float = 0.5
    packet_bits: int = 4000
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"traffic class name must be an identifier, got {self.name!r}")
        check_positive(self.rate_per_node_s, "rate_per_node_s")
        check_positive_int(self.packet_bits, "packet_bits")
        check_positive(self.fraction, "fraction")
        check_in_range(self.fraction, "fraction", 0.0, 1.0)


@dataclass(frozen=True)
class ChurnSpec:
    """Node join/leave dynamics.

    Each node departs after an exponential lifetime with rate
    ``leave_rate_per_node_s``; new nodes join as a global Poisson process
    of ``join_rate_per_s`` (capped at ``max_joins``).  Zero rates (the
    default) disable churn.
    """

    leave_rate_per_node_s: float = 0.0
    join_rate_per_s: float = 0.0
    max_joins: int = 10000

    def __post_init__(self) -> None:
        check_non_negative(self.leave_rate_per_node_s, "leave_rate_per_node_s")
        check_non_negative(self.join_rate_per_s, "join_rate_per_s")
        check_non_negative_int(self.max_joins, "max_joins")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, replayable city-scale CRN scenario."""

    # population & placement
    n_nodes: int = 100
    arena_m: Tuple[float, float] = (1000.0, 1000.0)
    seed: int = 0
    duration_s: float = 60.0
    # mobility (random waypoint)
    speed_range_mps: Tuple[float, float] = (0.5, 2.0)
    pause_s: float = 0.0
    mobility_step_s: float = 1.0
    # batteries (~0.02 J per packet per participant at the defaults, so
    # 25 J sustains ~1k participations — drain is visible but the network
    # survives a default-length run)
    battery_j: float = 25.0
    battery_jitter: float = 0.2
    # clustering geometry
    cluster_diameter_m: float = 60.0
    longhaul_range_m: float = 500.0
    max_cluster_size: int = 4
    backbone: str = "mst"
    recluster_interval_s: float = 10.0
    # physics (energy model inputs)
    target_ber: float = 1e-3
    constellation_b: int = 2
    bandwidth_hz: float = 10e3
    # workload
    traffic: Tuple[TrafficClass, ...] = (TrafficClass(),)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    # runtime
    kernel: str = "calendar"
    snapshot_interval_s: float = 5.0

    def __post_init__(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")
        if len(self.arena_m) != 2:
            raise ValueError("arena_m must be (width, height)")
        check_positive(self.arena_m[0], "arena_m[0]")
        check_positive(self.arena_m[1], "arena_m[1]")
        check_non_negative_int(self.seed, "seed")
        check_positive(self.duration_s, "duration_s")
        if len(self.speed_range_mps) != 2:
            raise ValueError("speed_range_mps must be (v_min, v_max)")
        v_min, v_max = self.speed_range_mps
        if not 0.0 < v_min <= v_max:
            raise ValueError("need 0 < v_min <= v_max")
        check_non_negative(self.pause_s, "pause_s")
        check_positive(self.mobility_step_s, "mobility_step_s")
        check_positive(self.battery_j, "battery_j")
        check_in_range(self.battery_jitter, "battery_jitter", 0.0, 0.999)
        check_positive(self.cluster_diameter_m, "cluster_diameter_m")
        check_positive(self.longhaul_range_m, "longhaul_range_m")
        check_positive_int(self.max_cluster_size, "max_cluster_size")
        if self.backbone not in ("mst", "bfs"):
            raise ValueError("backbone must be 'mst' or 'bfs'")
        check_positive(self.recluster_interval_s, "recluster_interval_s")
        check_probability(self.target_ber, "target_ber")
        check_positive_int(self.constellation_b, "constellation_b")
        check_positive(self.bandwidth_hz, "bandwidth_hz")
        if not self.traffic:
            raise ValueError("need at least one traffic class")
        names = [t.name for t in self.traffic]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate traffic class names: {names}")
        total = sum(t.fraction for t in self.traffic)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"traffic class fractions must sum to 1, got {total}")
        if self.kernel not in ("heap", "calendar"):
            raise ValueError("kernel must be 'heap' or 'calendar'")
        check_positive(self.snapshot_interval_s, "snapshot_interval_s")


def _require_pair(value: Any, name: str) -> Tuple[float, float]:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in value)
    ):
        raise ValueError(f"{name} must be a [low, high] number pair")
    return (float(value[0]), float(value[1]))


_SCALAR_FIELDS: Dict[str, type] = {
    "n_nodes": int,
    "seed": int,
    "duration_s": float,
    "pause_s": float,
    "mobility_step_s": float,
    "battery_j": float,
    "battery_jitter": float,
    "cluster_diameter_m": float,
    "longhaul_range_m": float,
    "max_cluster_size": int,
    "backbone": str,
    "recluster_interval_s": float,
    "target_ber": float,
    "constellation_b": int,
    "bandwidth_hz": float,
    "kernel": str,
    "snapshot_interval_s": float,
}

_TRAFFIC_FIELDS: Dict[str, type] = {
    "name": str,
    "rate_per_node_s": float,
    "packet_bits": int,
    "fraction": float,
}

_CHURN_FIELDS: Dict[str, type] = {
    "leave_rate_per_node_s": float,
    "join_rate_per_s": float,
    "max_joins": int,
}


def _coerce(value: Any, kind: type, name: str) -> Any:
    if kind is str:
        if not isinstance(value, str):
            raise ValueError(f"{name} must be a string")
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number")
    if kind is int:
        if float(value) != int(value):
            raise ValueError(f"{name} must be an integer")
        return int(value)
    return float(value)


def _parse_fields(
    data: Mapping[str, Any], fields: Mapping[str, type], what: str
) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in data.items():
        if key not in fields:
            raise ValueError(f"unknown {what} field: {key!r}")
        out[key] = _coerce(value, fields[key], key)
    return out


def scenario_from_mapping(data: Mapping[str, Any]) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a plain JSON-style mapping.

    Strict: unknown keys raise ``ValueError`` (the service maps this to
    a 400), as do type mismatches.  Missing keys take the dataclass
    defaults.
    """
    if not isinstance(data, Mapping):
        raise ValueError("scenario must be a JSON object")
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key in _SCALAR_FIELDS:
            kwargs[key] = _coerce(value, _SCALAR_FIELDS[key], key)
        elif key == "arena_m":
            kwargs[key] = _require_pair(value, "arena_m")
        elif key == "speed_range_mps":
            kwargs[key] = _require_pair(value, "speed_range_mps")
        elif key == "traffic":
            if not isinstance(value, (list, tuple)):
                raise ValueError("traffic must be a list of class objects")
            classes: List[TrafficClass] = []
            for i, item in enumerate(value):
                if not isinstance(item, Mapping):
                    raise ValueError(f"traffic[{i}] must be an object")
                classes.append(
                    TrafficClass(**_parse_fields(item, _TRAFFIC_FIELDS, f"traffic[{i}]"))
                )
            kwargs[key] = tuple(classes)
        elif key == "churn":
            if not isinstance(value, Mapping):
                raise ValueError("churn must be an object")
            kwargs[key] = ChurnSpec(**_parse_fields(value, _CHURN_FIELDS, "churn"))
        else:
            raise ValueError(f"unknown scenario field: {key!r}")
    return ScenarioSpec(**kwargs)


def scenario_to_mapping(spec: ScenarioSpec) -> Dict[str, Any]:
    """Serialise a spec back to the JSON mapping form (round-trips)."""
    out: Dict[str, Any] = {name: getattr(spec, name) for name in _SCALAR_FIELDS}
    out["arena_m"] = list(spec.arena_m)
    out["speed_range_mps"] = list(spec.speed_range_mps)
    out["traffic"] = [
        {name: getattr(t, name) for name in _TRAFFIC_FIELDS} for t in spec.traffic
    ]
    out["churn"] = {name: getattr(spec.churn, name) for name in _CHURN_FIELDS}
    return out
