"""Scenario runtime: a city-scale CRN driven by the event kernel.

:class:`ScenarioRuntime` compiles a :class:`~repro.scenario.spec.ScenarioSpec`
into a discrete-event simulation on a `repro.simulation` kernel:

* **mobility ticks** advance a shared :class:`WaypointState` on the exact
  ``k * mobility_step_s`` grid and push positions into the ``SUNode``s;
* **traffic** is one exponential arrival chain per present node; each
  arrival routes a packet through the current CoMIMONet (intra-cluster
  local hop, or local distribution + long-haul backbone hops + local
  collection) and drains the participants' batteries with
  :class:`~repro.energy.EnergyModel` per-bit costs;
* **churn** departs nodes after exponential lifetimes and admits Poisson
  joins (new row in the walk state, fresh battery, fresh arrival chain);
* **recluster ticks** rebuild the CoMIMONet from the present-and-alive
  population on the ``k * recluster_interval_s`` grid and invalidate the
  backbone route cache.

:meth:`ScenarioRuntime.run` yields one snapshot row per
``snapshot_interval_s`` of simulated time and a terminal summary row
carrying a SHA-256 digest over the canonical JSON of the snapshots — the
replay fingerprint `/v1/simulate` streams and CI's ``sim-smoke`` compares
across same-seed runs.

Determinism: every random draw comes from one of four named
``SeedSequence`` streams (:data:`~repro.scenario.spec.STREAM_NAMES`), and
event callbacks draw in kernel dispatch order, which is itself
deterministic in ``(time, seq)``.  No wall-clock enters any row; the
per-snapshot event rate is *simulated* events per *simulated* second
(wall-clock throughput is measured by the benchmarks around the runtime).
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.energy import EnergyModel
from repro.mac.csma import CsmaConfig
from repro.network.comimonet import CoMIMONet
from repro.network.mobility import RandomWaypointMobility, WaypointState
from repro.network.node import SUNode
from repro.scenario.spec import STREAM_NAMES, ScenarioSpec
from repro.simulation.kernel import SimKernel, make_kernel
from repro.utils.rng import as_rng, spawn_seed_sequences

__all__ = ["DROP_REASONS", "ScenarioRuntime", "canonical_row", "rows_digest"]

#: Why an offered packet can fail to deliver (stable snapshot-row keys).
DROP_REASONS: Tuple[str, ...] = (
    "source_dead",
    "dest_dead",
    "unassociated",
    "no_route",
    "dead_cluster",
)

_MIN_LOCAL_HOP_M = 1e-6  # local_tx needs d > 0; co-located nodes hop "zero" metres


def canonical_row(row: Dict[str, Any]) -> bytes:
    """The canonical JSON encoding digested for replay comparison."""
    return json.dumps(row, sort_keys=True, separators=(",", ":")).encode("ascii")


def rows_digest(rows: List[Dict[str, Any]]) -> str:
    """SHA-256 over the canonical encoding of a row sequence."""
    h = hashlib.sha256()
    for row in rows:
        h.update(canonical_row(row))
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class _NodeRec:
    """Book-keeping the runtime holds per ever-admitted node."""

    node: SUNode
    cls_index: int
    departed: bool = False
    arrival_eid: int = -1


class ScenarioRuntime:
    """Executes one :class:`ScenarioSpec` on an event kernel.

    Build one runtime per run — it is single-shot (:meth:`run` may be
    called once).  Two runtimes built from equal specs produce
    byte-identical row streams.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.kernel: SimKernel = make_kernel(spec.kernel)
        streams = spawn_seed_sequences(spec.seed, len(STREAM_NAMES))
        rngs = {name: as_rng(ss) for name, ss in zip(STREAM_NAMES, streams)}
        self._rng_placement = rngs["placement"]
        self._rng_mobility = rngs["mobility"]
        self._rng_traffic = rngs["traffic"]
        self._rng_churn = rngs["churn"]

        self.mobility = RandomWaypointMobility(
            arena=spec.arena_m,
            speed_range=spec.speed_range_mps,
            pause_s=spec.pause_s,
        )
        # One energy model per traffic class: packet_bits enters the
        # circuit-energy terms, so classes cannot share a model.
        self._energy = [
            EnergyModel(packet_bits=cls.packet_bits) for cls in spec.traffic
        ]
        fractions = np.array([cls.fraction for cls in spec.traffic], dtype=float)
        self._fractions = fractions / fractions.sum()
        # Deterministic per-leg MAC latency estimate: DIFS + mean initial
        # backoff + the frame/ACK exchange, from the CSMA/CA defaults.
        csma = CsmaConfig()
        self._leg_latency_us = (
            csma.difs_us + (csma.cw_min - 1) / 2.0 * csma.slot_us + csma.success_overhead_us
        )

        # --- placement stream: positions, batteries, class membership ---
        positions = self.mobility.initial_positions(spec.n_nodes, self._rng_placement)
        lo, hi = 1.0 - spec.battery_jitter, 1.0 + spec.battery_jitter
        batteries = spec.battery_j * self._rng_placement.uniform(lo, hi, size=spec.n_nodes)
        classes = self._rng_placement.choice(
            len(spec.traffic), size=spec.n_nodes, p=self._fractions
        )
        self._recs: Dict[int, _NodeRec] = {}
        for i in range(spec.n_nodes):
            node = SUNode(i, (positions[i, 0], positions[i, 1]), float(batteries[i]))
            self._recs[i] = _NodeRec(node=node, cls_index=int(classes[i]))
        self._present_ids: List[int] = list(range(spec.n_nodes))

        # --- mobility stream: the shared incremental walk ---
        self._walk: WaypointState = self.mobility.start(positions, self._rng_mobility)

        # --- network state (rebuilt on each recluster tick) ---
        self.net: Optional[CoMIMONet] = None
        self._cluster_of: Dict[int, int] = {}
        self._route_cache: Dict[Tuple[int, int], Optional[List[int]]] = {}
        self._rebuild_network()

        # --- counters ---
        self.offered = 0
        self.delivered = 0
        self.drops: Dict[str, int] = {reason: 0 for reason in DROP_REASONS}
        self.joins = 0
        self.leaves = 0
        self._latency_us_sum = 0.0
        self._ran = False

        # --- event fabric ---
        self._mobility_tick_no = 0
        self.kernel.schedule_at(spec.mobility_step_s, self._on_mobility_tick)
        self._recluster_tick_no = 0
        self.kernel.schedule_at(spec.recluster_interval_s, self._on_recluster_tick)
        for node_id in self._present_ids:
            self._start_arrival_chain(node_id)
            self._schedule_departure(node_id)
        if spec.churn.join_rate_per_s > 0.0 and spec.churn.max_joins > 0:
            self.kernel.schedule(
                float(self._rng_churn.exponential(1.0 / spec.churn.join_rate_per_s)),
                self._on_join,
            )

    # ------------------------------------------------------------------ #
    # population helpers                                                 #
    # ------------------------------------------------------------------ #

    def _alive_members(self, cluster_nodes: List[SUNode]) -> List[SUNode]:
        """Cluster members that can still participate in a transmission."""
        return [
            n
            for n in cluster_nodes
            if n.alive and not self._recs[n.node_id].departed
        ]

    def _live_node_count(self) -> int:
        return sum(1 for i in self._present_ids if self._recs[i].node.alive)

    def _mean_residual_j(self) -> float:
        if not self._present_ids:
            return 0.0
        total = sum(self._recs[i].node.remaining_j for i in self._present_ids)
        return total / len(self._present_ids)

    # ------------------------------------------------------------------ #
    # mobility & reclustering                                            #
    # ------------------------------------------------------------------ #

    def _on_mobility_tick(self) -> None:
        spec = self.spec
        # Step every row (including departed nodes) so the mobility
        # stream's draw order is independent of churn outcomes.
        self.mobility.step(self._walk, spec.mobility_step_s, self._rng_mobility)
        pos = self._walk.positions
        for node_id in self._present_ids:
            row = pos[node_id]
            self._recs[node_id].node.move_to((float(row[0]), float(row[1])))
        self._mobility_tick_no += 1
        t_next = (self._mobility_tick_no + 1) * spec.mobility_step_s
        if t_next <= spec.duration_s:
            self.kernel.schedule_at(t_next, self._on_mobility_tick)

    def _rebuild_network(self) -> None:
        members = [
            self._recs[i].node
            for i in self._present_ids
            if self._recs[i].node.alive
        ]
        self._route_cache.clear()
        self._cluster_of.clear()
        if not members:
            self.net = None
            return
        self.net = CoMIMONet(
            members,
            cluster_diameter=self.spec.cluster_diameter_m,
            longhaul_range=self.spec.longhaul_range_m,
            max_cluster_size=self.spec.max_cluster_size,
            backbone=self.spec.backbone,
        )
        for cluster in self.net.clusters:
            for node in cluster.nodes:
                self._cluster_of[node.node_id] = cluster.cluster_id

    def _on_recluster_tick(self) -> None:
        self._rebuild_network()
        self._recluster_tick_no += 1
        t_next = (self._recluster_tick_no + 1) * self.spec.recluster_interval_s
        if t_next <= self.spec.duration_s:
            self.kernel.schedule_at(t_next, self._on_recluster_tick)

    # ------------------------------------------------------------------ #
    # churn                                                              #
    # ------------------------------------------------------------------ #

    def _schedule_departure(self, node_id: int) -> None:
        rate = self.spec.churn.leave_rate_per_node_s
        if rate <= 0.0:
            return
        lifetime = float(self._rng_churn.exponential(1.0 / rate))
        self.kernel.schedule(lifetime, lambda: self._on_leave(node_id))

    def _on_leave(self, node_id: int) -> None:
        rec = self._recs[node_id]
        if rec.departed:
            return
        rec.departed = True
        self.leaves += 1
        # Handle-free cancellation of the node's pending arrival.
        if rec.arrival_eid >= 0:
            self.kernel.cancel(rec.arrival_eid)
            rec.arrival_eid = -1
        idx = bisect_left(self._present_ids, node_id)
        if idx < len(self._present_ids) and self._present_ids[idx] == node_id:
            self._present_ids.pop(idx)

    def _on_join(self) -> None:
        spec = self.spec
        self.joins += 1
        # Position/waypoint/speed for the new row come from the churn
        # stream so the mobility stream stays a pure function of ticks.
        row = self.mobility.admit(self._walk, self._rng_churn)
        lo, hi = 1.0 - spec.battery_jitter, 1.0 + spec.battery_jitter
        battery = spec.battery_j * float(self._rng_churn.uniform(lo, hi))
        cls_index = int(self._rng_churn.choice(len(spec.traffic), p=self._fractions))
        pos = self._walk.positions[row]
        node = SUNode(row, (float(pos[0]), float(pos[1])), battery)
        self._recs[row] = _NodeRec(node=node, cls_index=cls_index)
        insort(self._present_ids, row)
        self._start_arrival_chain(row)
        self._schedule_departure(row)
        if self.joins < spec.churn.max_joins:
            self.kernel.schedule(
                float(self._rng_churn.exponential(1.0 / spec.churn.join_rate_per_s)),
                self._on_join,
            )

    # ------------------------------------------------------------------ #
    # traffic                                                            #
    # ------------------------------------------------------------------ #

    def _start_arrival_chain(self, node_id: int) -> None:
        rec = self._recs[node_id]
        cls = self.spec.traffic[rec.cls_index]
        delay = float(self._rng_traffic.exponential(1.0 / cls.rate_per_node_s))
        rec.arrival_eid = self.kernel.schedule(delay, lambda: self._on_arrival(node_id))

    def _on_arrival(self, node_id: int) -> None:
        rec = self._recs[node_id]
        if rec.departed:  # backstop; departures cancel the chain
            return
        dest_id = self._pick_destination(node_id)
        if dest_id is None:
            self.offered += 1
            self.drops["no_route"] += 1
        else:
            self._deliver(node_id, dest_id, rec.cls_index)
        self._start_arrival_chain(node_id)

    def _pick_destination(self, src_id: int) -> Optional[int]:
        """A uniform present peer, skipping the source (one RNG draw)."""
        n = len(self._present_ids)
        if n < 2:
            return None
        i = int(self._rng_traffic.integers(0, n - 1))
        src_pos = bisect_left(self._present_ids, src_id)
        if i >= src_pos:
            i += 1
        return self._present_ids[i]

    def _route_path(self, src_cid: int, dst_cid: int) -> Optional[List[int]]:
        """Backbone cluster-id path, cached until the next recluster."""
        key = (src_cid, dst_cid)
        if key not in self._route_cache:
            assert self.net is not None
            self._route_cache[key] = self.net.backbone.shortest_weighted_path(
                src_cid, dst_cid
            )
        return self._route_cache[key]

    def _charge(self, node: SUNode, energy_j: float) -> None:
        """Drain ``energy_j``, letting the last transmission empty the cell."""
        if node.alive:
            node.consume(min(energy_j, node.remaining_j))

    def _deliver(self, src_id: int, dst_id: int, cls_index: int) -> None:
        spec = self.spec
        self.offered += 1
        src = self._recs[src_id].node
        dst = self._recs[dst_id].node
        if not src.alive:
            self.drops["source_dead"] += 1
            return
        if not dst.alive:
            self.drops["dest_dead"] += 1
            return
        src_cid = self._cluster_of.get(src_id)
        dst_cid = self._cluster_of.get(dst_id)
        if self.net is None or src_cid is None or dst_cid is None:
            # Joined (or resurrected by nothing — dead at cluster time)
            # since the last recluster tick: not yet in any cluster.
            self.drops["unassociated"] += 1
            return

        cls = spec.traffic[cls_index]
        model = self._energy[cls_index]
        bits = float(cls.packet_bits)
        p, b, bw = spec.target_ber, spec.constellation_b, spec.bandwidth_hz

        if src_cid == dst_cid:
            # Intra-cluster: one local SISO hop, source to destination.
            d = max(src.distance_to(dst), _MIN_LOCAL_HOP_M)
            self._charge(src, model.local_tx(p, b, d, bw).total * bits)
            self._charge(dst, model.local_rx(b, bw).total * bits)
            self.delivered += 1
            self._latency_us_sum += self._leg_latency_us
            return

        path = self._route_path(src_cid, dst_cid)
        if path is None:
            self.drops["no_route"] += 1
            return
        clusters = [self.net.cluster(cid) for cid in path]
        rosters = [self._alive_members(c.nodes) for c in clusters]
        if any(not roster for roster in rosters):
            # A relay cluster exhausted every member since the recluster.
            self.drops["dead_cluster"] += 1
            return

        legs = 2 + (len(path) - 1)  # distribute + long-haul hops + collect
        # 1. Local distribution inside the source cluster (bounded by the
        #    cluster diameter), so cooperating members hold the packet.
        self._charge(src, model.local_tx(p, b, spec.cluster_diameter_m, bw).total * bits)
        local_rx_j = model.local_rx(b, bw).total * bits
        for member in rosters[0]:
            if member is not src:
                self._charge(member, local_rx_j)
        # 2. Long-haul cooperative hops along the backbone.
        mimo_rx_j = model.mimo_rx(b, bw).total * bits
        for hop in range(len(path) - 1):
            tx_roster, rx_roster = rosters[hop], rosters[hop + 1]
            distance = self.net.cluster_graph.weight(path[hop], path[hop + 1])
            per_tx_j = (
                model.mimo_tx(p, b, len(tx_roster), len(rx_roster), distance, bw).total
                * bits
            )
            for member in tx_roster:
                self._charge(member, per_tx_j)
            for member in rx_roster:
                self._charge(member, mimo_rx_j)
        # 3. Local collection: the destination cluster's head forwards to
        #    the destination node (skipped when the head IS the node).
        head = clusters[-1].head
        if head is not dst:
            d = max(head.distance_to(dst), _MIN_LOCAL_HOP_M)
            self._charge(head, model.local_tx(p, b, d, bw).total * bits)
            self._charge(dst, local_rx_j)
        self.delivered += 1
        self._latency_us_sum += legs * self._leg_latency_us

    # ------------------------------------------------------------------ #
    # snapshots & the run loop                                           #
    # ------------------------------------------------------------------ #

    def _snapshot(self, t: float, events_delta: int) -> Dict[str, Any]:
        ratio = self.delivered / self.offered if self.offered else 1.0
        mean_latency = (
            self._latency_us_sum / self.delivered / 1e3 if self.delivered else 0.0
        )
        return {
            "row": "snapshot",
            "t_s": round(t, 9),
            "events_processed": self.kernel.events_processed,
            "events_per_sim_s": round(events_delta / self.spec.snapshot_interval_s, 6),
            "present_nodes": len(self._present_ids),
            "live_nodes": self._live_node_count(),
            "clusters": self.net.n_clusters if self.net is not None else 0,
            "mean_residual_j": round(self._mean_residual_j(), 12),
            "offered": self.offered,
            "delivered": self.delivered,
            "delivery_ratio": round(ratio, 9),
            "dropped": dict(self.drops),
            "mean_latency_ms": round(mean_latency, 6),
            "joins": self.joins,
            "leaves": self.leaves,
        }

    def run(self) -> Iterator[Dict[str, Any]]:
        """Yield snapshot rows, then a terminal summary row (single-shot).

        The summary's ``digest`` is a SHA-256 over the canonical JSON of
        the snapshot rows — equal digests mean bit-identical replays.
        """
        if self._ran:
            raise RuntimeError("ScenarioRuntime.run() is single-shot; build a new runtime")
        self._ran = True
        spec = self.spec
        digest = hashlib.sha256()
        n_snapshots = int(np.ceil(spec.duration_s / spec.snapshot_interval_s))
        last_processed = 0
        for k in range(1, n_snapshots + 1):
            t = min(k * spec.snapshot_interval_s, spec.duration_s)
            self.kernel.run(until=t)
            processed = self.kernel.events_processed
            row = self._snapshot(t, processed - last_processed)
            last_processed = processed
            digest.update(canonical_row(row))
            digest.update(b"\n")
            yield row
        yield {
            "row": "summary",
            "duration_s": spec.duration_s,
            "events_processed": self.kernel.events_processed,
            "offered": self.offered,
            "delivered": self.delivered,
            "delivery_ratio": round(
                self.delivered / self.offered if self.offered else 1.0, 9
            ),
            "dropped": dict(self.drops),
            "joins": self.joins,
            "leaves": self.leaves,
            "live_nodes": self._live_node_count(),
            "digest": digest.hexdigest(),
        }
