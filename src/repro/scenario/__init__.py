"""City-scale CRN scenario subsystem.

Turns the network/MAC/DES substrate into a servable workload: a
declarative, seed-deterministic scenario model (`repro.scenario.spec`),
and a runtime (`repro.scenario.runtime`) that wires RandomWaypoint
mobility, per-transmission battery drain, node churn and CoMIMONet
cluster reconfiguration into a high-throughput event kernel, emitting
periodic metric snapshots.  `/v1/simulate` (`repro.service`) streams
those snapshots as NDJSON.  See `docs/simulation.md`.
"""

from repro.scenario.runtime import ScenarioRuntime, canonical_row, rows_digest
from repro.scenario.spec import (
    ChurnSpec,
    ScenarioSpec,
    TrafficClass,
    scenario_from_mapping,
    scenario_to_mapping,
)

__all__ = [
    "ChurnSpec",
    "ScenarioRuntime",
    "ScenarioSpec",
    "TrafficClass",
    "canonical_row",
    "rows_digest",
    "scenario_from_mapping",
    "scenario_to_mapping",
]
