"""Monte-Carlo BER/PER waterfall sweeps with confidence intervals.

Link-level papers live and die by waterfall curves; this module sweeps
:func:`repro.phy.link.simulate_link` over an SNR axis and attaches Wilson
score intervals to every point, escalating the sample size until either a
target number of bit errors is observed (keeping the *relative* interval
width roughly constant down the waterfall) or a sample budget is hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.modulation.base import Modem
from repro.phy.link import simulate_link
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import (
    check_finite,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)

__all__ = ["BerPoint", "sweep_ber", "wilson_interval"]


def wilson_interval(
    n_errors: int, n_trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 observed errors still yields a finite
    upper bound), which is exactly the regime BER measurement lives in.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    if not (0 <= n_errors <= n_trials):
        raise ValueError("need 0 <= n_errors <= n_trials")
    check_probability(confidence, "confidence")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    p_hat = n_errors / n_trials
    denom = 1.0 + z**2 / n_trials
    center = (p_hat + z**2 / (2 * n_trials)) / denom
    half = (
        z
        * np.sqrt(p_hat * (1 - p_hat) / n_trials + z**2 / (4 * n_trials**2))
        / denom
    )
    low = 0.0 if n_errors == 0 else max(center - half, 0.0)
    high = 1.0 if n_errors == n_trials else min(center + half, 1.0)
    return low, high


@dataclass(frozen=True)
class BerPoint:
    """One waterfall point with its uncertainty."""

    snr_db: float
    n_bits: int
    n_errors: int
    ber: float
    ci_low: float
    ci_high: float

    def __post_init__(self) -> None:
        check_finite(self.snr_db, "snr_db")
        check_non_negative_int(self.n_bits, "n_bits")
        check_non_negative_int(self.n_errors, "n_errors")
        check_finite(self.ber, "ber")
        check_finite(self.ci_low, "ci_low")
        check_finite(self.ci_high, "ci_high")


def sweep_ber(
    modem: Modem,
    snrs_db: Sequence[float],
    mt: int = 1,
    mr: int = 1,
    fading: str = "rayleigh",
    rician_k: float = 0.0,
    target_errors: int = 100,
    initial_bits: int = 20_000,
    max_bits: int = 2_000_000,
    confidence: float = 0.95,
    rng: RngLike = None,
) -> List[BerPoint]:
    """Measure the BER waterfall of one link configuration.

    At each SNR, batches of ``initial_bits`` bits are simulated until
    ``target_errors`` errors accumulate or ``max_bits`` is reached; the
    Wilson interval of the pooled counts is attached.  Points are returned
    in the order of ``snrs_db``.
    """
    check_positive_int(target_errors, "target_errors")
    check_positive_int(initial_bits, "initial_bits")
    check_positive_int(max_bits, "max_bits")
    gen = as_rng(rng)
    points = []
    for snr_db in snrs_db:
        n_bits = 0
        n_errors = 0
        while n_errors < target_errors and n_bits < max_bits:
            batch = min(initial_bits, max_bits - n_bits)
            result = simulate_link(
                batch, modem, float(snr_db), mt, mr, fading, rician_k, rng=gen
            )
            n_bits += result.n_bits
            n_errors += result.n_bit_errors
        low, high = wilson_interval(n_errors, n_bits, confidence)
        points.append(
            BerPoint(
                snr_db=float(snr_db),
                n_bits=n_bits,
                n_errors=n_errors,
                ber=n_errors / n_bits,
                ci_low=low,
                ci_high=high,
            )
        )
    return points
