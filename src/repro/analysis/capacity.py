"""MIMO channel capacity: the spectral-efficiency case for cooperation.

Section 1 motivates MIMO with "extremely high spectral efficiencies by
simultaneously transmitting multiple data streams in the same channel".
This module quantifies that motivation for the virtual arrays the library
builds:

* :func:`ergodic_capacity` — ``E[log2 det(I + (snr/mt) H H^H)]`` over the
  Rayleigh ensemble (equal power allocation, channel unknown at the
  transmitter — the cooperative-MIMO operating point);
* :func:`outage_capacity` — the rate sustainable with the given outage
  probability under block fading (the quasi-static testbed regime);
* :func:`capacity_slope` — the empirical high-SNR multiplexing gain,
  which approaches ``min(mt, mr)`` spatial degrees of freedom.
"""

from __future__ import annotations

import numpy as np

from repro.channel.rayleigh import rayleigh_mimo_channel
from repro.utils.rng import RngLike, as_rng
from repro.utils.units import DB, db_to_linear, linear_to_db
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["capacity_samples", "ergodic_capacity", "outage_capacity", "capacity_slope"]


def capacity_samples(
    mt: int,
    mr: int,
    snr_linear: float,
    n_channels: int = 10_000,
    rng: RngLike = None,
) -> np.ndarray:
    """Per-realization capacities ``log2 det(I + (snr/mt) H H^H)`` [b/s/Hz].

    Equal power split across the ``mt`` (virtual) transmit antennas, which
    is optimal without transmitter channel knowledge.
    """
    check_positive_int(mt, "mt")
    check_positive_int(mr, "mr")
    check_positive(snr_linear, "snr_linear")
    check_positive_int(n_channels, "n_channels")
    h = rayleigh_mimo_channel(mt, mr, n_channels, rng)
    gram = np.einsum("bij,bkj->bik", h, np.conj(h))  # H H^H, (n, mr, mr)
    eye = np.eye(mr)
    sign, logdet = np.linalg.slogdet(eye[None, :, :] + (snr_linear / mt) * gram)
    # the matrix is Hermitian positive definite: sign is always +1
    return logdet.real / np.log(2.0)


def ergodic_capacity(
    mt: int,
    mr: int,
    snr_db: DB,
    n_channels: int = 10_000,
    rng: RngLike = None,
) -> float:
    """Mean capacity over the fading ensemble [b/s/Hz]."""
    snr = float(db_to_linear(snr_db))
    return float(np.mean(capacity_samples(mt, mr, snr, n_channels, rng)))


def outage_capacity(
    mt: int,
    mr: int,
    snr_db: DB,
    outage_probability: float = 0.1,
    n_channels: int = 20_000,
    rng: RngLike = None,
) -> float:
    """Rate supported in all but ``outage_probability`` of fades [b/s/Hz].

    The quantile of the per-block capacity distribution — the right metric
    for the quasi-static regime where one packet sees one fade.
    """
    check_probability(outage_probability, "outage_probability")
    snr = float(db_to_linear(snr_db))
    samples = capacity_samples(mt, mr, snr, n_channels, rng)
    return float(np.quantile(samples, outage_probability))


def capacity_slope(
    mt: int,
    mr: int,
    snr_low_db: DB = 20.0,
    snr_high_db: DB = 30.0,
    n_channels: int = 10_000,
    rng: RngLike = None,
) -> float:
    """Empirical multiplexing gain: b/s/Hz gained per 3 dB at high SNR.

    Approaches ``min(mt, mr)`` — the spatial-degrees-of-freedom argument
    behind cooperative MIMO's spectral-efficiency claim.
    """
    gen = as_rng(rng)
    if snr_high_db <= snr_low_db:
        raise ValueError("need snr_high_db > snr_low_db")
    c_low = ergodic_capacity(mt, mr, snr_low_db, n_channels, gen)
    c_high = ergodic_capacity(mt, mr, snr_high_db, n_channels, gen)
    return (c_high - c_low) / ((snr_high_db - snr_low_db) / float(linear_to_db(2.0)))
