"""Analysis utilities on top of the core library.

* :mod:`repro.analysis.link_budget` — itemized dB-domain link budgets
  (transmit power → path loss → walls → fading margin → SNR), the way an
  RF engineer would sanity-check the testbed calibrations;
* :mod:`repro.analysis.ber_sweep` — Monte-Carlo BER/PER waterfall curves
  for any modem and antenna configuration, with Wilson confidence
  intervals and automatic sample-size escalation at low error rates;
* :mod:`repro.analysis.capacity` — ergodic/outage MIMO capacity and the
  multiplexing-gain slope (the Section 1 spectral-efficiency motivation).
"""

from repro.analysis.ber_sweep import BerPoint, sweep_ber, wilson_interval
from repro.analysis.capacity import (
    capacity_samples,
    capacity_slope,
    ergodic_capacity,
    outage_capacity,
)
from repro.analysis.link_budget import BudgetItem, LinkBudget

__all__ = [
    "LinkBudget",
    "BudgetItem",
    "sweep_ber",
    "BerPoint",
    "wilson_interval",
    "capacity_samples",
    "ergodic_capacity",
    "outage_capacity",
    "capacity_slope",
]
