"""Itemized dB-domain link budgets.

A :class:`LinkBudget` accumulates named gains and losses in dB relative to
a transmit power, tracks the running level, and resolves against a noise
floor into an SNR — the standard RF bookkeeping used to audit the testbed
calibrations in EXPERIMENTS.md.  Budgets can be built by hand or derived
from an :class:`repro.channel.indoor.IndoorChannel` link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.units import DB, DBm
from repro.utils.validation import check_finite

__all__ = ["BudgetItem", "LinkBudget"]


@dataclass(frozen=True)
class BudgetItem:
    """One line of a budget: a named dB contribution (losses negative)."""

    name: str
    db: DB

    def __post_init__(self) -> None:
        check_finite(self.db, "db")


class LinkBudget:
    """A transmit-to-receive power ledger in dB.

    Parameters
    ----------
    tx_power_dbm:
        The starting level.
    noise_power_dbm:
        The floor the final level is compared against for :meth:`snr_db`.
    """

    def __init__(self, tx_power_dbm: DBm, noise_power_dbm: DBm = -110.0):
        self.tx_power_dbm = check_finite(tx_power_dbm, "tx_power_dbm")
        self.noise_power_dbm = check_finite(noise_power_dbm, "noise_power_dbm")
        self._items: List[BudgetItem] = []

    # ------------------------------------------------------------------ #

    def add_gain(self, name: str, db: DB) -> "LinkBudget":
        """Add a positive contribution (antenna gain, combining gain...)."""
        if db < 0.0:
            raise ValueError("gains must be non-negative; use add_loss")
        self._items.append(BudgetItem(name, float(db)))
        return self

    def add_loss(self, name: str, db: DB) -> "LinkBudget":
        """Add a loss (path loss, wall, margin...); ``db`` given positive."""
        if db < 0.0:
            raise ValueError("losses are specified as positive dB values")
        self._items.append(BudgetItem(name, -float(db)))
        return self

    @property
    def items(self) -> Tuple[BudgetItem, ...]:
        return tuple(self._items)

    @property
    def received_power_dbm(self) -> DBm:
        """Final level after every line item."""
        return self.tx_power_dbm + sum(item.db for item in self._items)

    @property
    def snr_db(self) -> DB:
        """Received level over the noise floor."""
        return self.received_power_dbm - self.noise_power_dbm

    def margin_db(self, required_snr_db: DB) -> DB:
        """Headroom above (or deficit below) a required SNR."""
        return self.snr_db - float(required_snr_db)

    # ------------------------------------------------------------------ #

    @classmethod
    def from_indoor_link(
        cls,
        channel,
        tx_position,
        rx_position,
        tx_power_dbm: DBm,
        fading_margin_db: DB = 0.0,
    ) -> "LinkBudget":
        """Build the itemized budget of one indoor-channel link.

        Splits the channel's loss into the distance law, the wall
        crossings, and the per-link shadowing draw, then adds an optional
        fading margin — so ``snr_db`` matches
        ``channel.average_snr_db(...) - fading_margin_db`` exactly (a
        property the tests pin down).
        """
        tx = np.asarray(tx_position, dtype=float)
        rx = np.asarray(rx_position, dtype=float)
        dist = float(np.linalg.norm(tx - rx))
        budget = cls(tx_power_dbm, noise_power_dbm=channel.noise_power_dbm)
        budget.add_loss(
            f"path loss ({dist:.1f} m)", float(channel.pathloss.attenuation_db(dist))
        )
        blockage = channel.blockage_db(tx, rx)
        if blockage > 0.0:
            budget.add_loss("walls/obstacles", blockage)
        shadow = channel._shadow_db(tx, rx)
        if shadow > 0.0:
            budget.add_loss("shadowing", shadow)
        elif shadow < 0.0:
            budget.add_gain("shadowing (constructive)", -shadow)
        if fading_margin_db > 0.0:
            budget.add_loss("fading margin", fading_margin_db)
        return budget

    def to_text(self) -> str:
        """Aligned ledger rendering."""
        width = max([len("transmit power")] + [len(i.name) for i in self._items]) + 2
        lines = [f"{'transmit power'.ljust(width)} {self.tx_power_dbm:+8.1f} dBm"]
        level = self.tx_power_dbm
        for item in self._items:
            level += item.db
            lines.append(f"{item.name.ljust(width)} {item.db:+8.1f} dB  -> {level:+.1f} dBm")
        lines.append(f"{'noise floor'.ljust(width)} {self.noise_power_dbm:+8.1f} dBm")
        lines.append(f"{'SNR'.ljust(width)} {self.snr_db:+8.1f} dB")
        return "\n".join(lines)
