"""Discrete-event simulation kernels.

`EventScheduler` is the original handle-based scheduler used by the MAC
layer; `HeapKernel`/`CalendarKernel` are the high-throughput integer-id
kernels behind the `repro.scenario` runtime (see `docs/simulation.md`).
"""

from repro.simulation.events import EventHandle, EventScheduler
from repro.simulation.kernel import (
    CalendarKernel,
    HeapKernel,
    SimKernel,
    make_kernel,
)

__all__ = [
    "CalendarKernel",
    "EventHandle",
    "EventScheduler",
    "HeapKernel",
    "SimKernel",
    "make_kernel",
]
