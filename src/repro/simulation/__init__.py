"""Discrete-event simulation kernel used by the MAC layer."""

from repro.simulation.events import EventScheduler

__all__ = ["EventScheduler"]
