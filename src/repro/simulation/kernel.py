"""High-throughput discrete-event kernels: binary heap and calendar queue.

Two interchangeable schedulers behind one protocol, built for the
city-scale scenario runtime (`repro.scenario`) where event throughput is
the budget that everything else spends:

* :class:`HeapKernel` — `heapq`-backed, O(log n) per operation.  The C
  implementation of `heapq` makes it very fast at small-to-moderate hold
  sizes.
* :class:`CalendarKernel` — a calendar queue (R. Brown, CACM 1988; the
  slotted structure URA-CSMA-Sim builds its MAC slots on): events hash
  into time buckets of width ``w``, giving O(1) amortised insert and
  dequeue independent of hold size.  Bucket count and width adapt to the
  live event population.

Both kernels dispatch in exactly the same total order — ``(time, seq)``
with ``seq`` the global admission counter — so a scenario replays
bit-identically regardless of kernel choice (property-tested in
``tests/test_simulation_kernel.py``).

Design notes for the hot path:

* Events are plain ``[time, seq, callback]`` records; event ids are the
  ``seq`` integers ("handle-free": cancellation is ``cancel(event_id)``
  with no token object to keep alive).
* Only events admitted through :meth:`schedule` / :meth:`schedule_at`
  are registered for cancellation.  :meth:`schedule_many` is the bulk
  fire-and-forget path — it skips the registry entirely, which is what
  keeps the per-event cost low enough for the ≥1M events/sec target
  (``benchmarks/bench_sim.py``).  ``cancel`` on a batch id returns
  ``False``.
* The calendar queue maps an event to virtual bucket
  ``int(t * inv_width)`` and dispatches events whose virtual bucket is
  ``<= cursor``.  Using the *same* integer mapping for insertion and the
  due-check (rather than comparing ``t`` against ``(cursor + 1) * width``)
  makes the structure immune to float rounding between ``width`` and its
  reciprocal — an event can never strand in a bucket the cursor believes
  is in the future.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence

from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "CalendarKernel",
    "HeapKernel",
    "SimKernel",
    "make_kernel",
]

_INF = float("inf")


class _Cancelled:
    """Sentinel stored in an entry's callback slot when it is cancelled."""

    __slots__ = ()


_CANCELLED = _Cancelled()

Callback = Optional[Callable[[], None]]


def _check_delays(delays: Sequence[float]) -> None:
    if len(delays) > 0 and min(delays) < 0.0:
        raise ValueError("delays must be non-negative")


class HeapKernel:
    """Binary-heap event kernel with integer event ids.

    ``schedule``/``schedule_at`` return an ``int`` event id that can be
    passed to :meth:`cancel`; ``schedule_many`` bulk-inserts
    fire-and-forget events (not cancellable).
    """

    __slots__ = ("_queue", "_entries", "_now", "_seq", "_processed")

    def __init__(self) -> None:
        self._queue: List[List[Any]] = []
        self._entries: Dict[int, List[Any]] = {}
        self._now = 0.0
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live queued events (cancelled events excluded)."""
        return len(self._queue) - self._tombstones()

    def _tombstones(self) -> int:
        return sum(1 for e in self._queue if e[2] is _CANCELLED)

    def schedule(self, delay: float, callback: Callback = None) -> int:
        """Schedule ``callback`` after ``delay``; returns a cancellable id."""
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        eid = self._seq
        self._seq = eid + 1
        entry = [self._now + delay, eid, callback]
        self._entries[eid] = entry
        heapq.heappush(self._queue, entry)
        return eid

    def schedule_at(self, time: float, callback: Callback = None) -> int:
        """Schedule ``callback`` at an absolute time (``>= now``)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self.schedule(time - self._now, callback)

    def schedule_many(self, delays: Sequence[float], callback: Callback = None) -> range:
        """Bulk-insert fire-and-forget events; returns their id range.

        Batch events skip the cancellation registry (that is what makes
        this the fast path); ``cancel`` on an id from the returned range
        reports ``False``.
        """
        _check_delays(delays)
        now = self._now
        seq = self._seq
        queue = self._queue
        push = heapq.heappush
        for d in delays:
            push(queue, [now + d, seq, callback])
            seq += 1
        first = self._seq
        self._seq = seq
        return range(first, seq)

    def cancel(self, event_id: int) -> bool:
        """Cancel a pending event by id; ``False`` if unknown or already run."""
        entry = self._entries.pop(event_id, None)
        if entry is None:
            return False
        entry[2] = _CANCELLED
        return True

    def step(self) -> bool:
        """Dispatch the next live event; ``False`` when the queue is empty."""
        return self.run(max_events=1) == 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in ``(time, seq)`` order; returns the count.

        With ``until`` set the clock lands exactly on ``until`` when the
        queue drains earlier or the next event lies beyond the horizon.
        """
        queue = self._queue
        entries = self._entries
        pop = heapq.heappop
        limit = _INF if until is None else until
        budget = -1 if max_events is None else max_events
        done = 0
        while queue and done != budget:
            entry = queue[0]
            cb = entry[2]
            if cb is _CANCELLED:
                pop(queue)
                continue
            t = entry[0]
            if t > limit:
                break
            pop(queue)
            entries.pop(entry[1], None)
            self._now = t
            if cb is not None:
                cb()
            done += 1
        if until is not None and self._now < until and not (
            queue and done == budget
        ):
            self._now = until
        self._processed += done
        return done


class CalendarKernel:
    """Calendar-queue event kernel: O(1) amortised insert and dequeue.

    Events hash into ``n_buckets`` time slots of ``bucket_width``; both
    adapt as the live population grows or shrinks.  Slots are sized to
    hold ~``_SLOT_LOAD`` live events and are drained in bulk: one
    C-level ``list.sort`` orders the slot, and — because the virtual
    bucket mapping ``int(t * inv_width)`` is monotone in ``t`` — the
    events due this lap form a prefix of the sorted slot, which is then
    dispatched with a tight index walk.  This amortises the Python-level
    per-event bookkeeping that a scan-per-dispatch calendar queue pays.
    Dispatch order is identical to :class:`HeapKernel`.
    """

    # Target live events per slot; slots drain via one sort per lap, so a
    # moderately full slot amortises better than the classic ~1-per-bucket
    # sizing (measured in benchmarks/bench_sim.py).
    _SLOT_LOAD = 16
    # Bucket "year" (n * width) as a multiple of the live population's
    # time span; >1 keeps the cursor from lapping mid-span.
    _YEAR_SPAN = 1.25

    __slots__ = (
        "_buckets",
        "_mask",
        "_width",
        "_inv",
        "_now",
        "_seq",
        "_entries",
        "_size",
        "_processed",
        "_gen",
    )

    def __init__(self, bucket_width: float = 1.0, n_buckets: int = 16) -> None:
        check_positive(bucket_width, "bucket_width")
        check_positive_int(n_buckets, "n_buckets")
        n = 16
        while n < n_buckets:
            n *= 2
        self._mask = n - 1
        self._width = bucket_width
        self._inv = 1.0 / bucket_width
        self._buckets: List[List[Any]] = [[] for _ in range(n)]
        self._now = 0.0
        self._seq = 0
        self._entries: Dict[int, List[Any]] = {}
        self._size = 0
        self._processed = 0
        self._gen = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live queued events (cancelled events excluded)."""
        return self._size

    def schedule(self, delay: float, callback: Callback = None) -> int:
        """Schedule ``callback`` after ``delay``; returns a cancellable id."""
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        t = self._now + delay
        eid = self._seq
        self._seq = eid + 1
        # 4th element marks a registry-tracked (cancellable) entry; list
        # comparison never reaches it because seq (index 1) is unique.
        entry = [t, eid, callback, True]
        self._entries[eid] = entry
        self._buckets[int(t * self._inv) & self._mask].append(entry)
        self._size += 1
        if self._size > (self._mask + 1) * 2 * self._SLOT_LOAD:
            self._resize()
        return eid

    def schedule_at(self, time: float, callback: Callback = None) -> int:
        """Schedule ``callback`` at an absolute time (``>= now``)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self.schedule(time - self._now, callback)

    def schedule_many(self, delays: Sequence[float], callback: Callback = None) -> range:
        """Bulk-insert fire-and-forget events; returns their id range.

        Batch events skip the cancellation registry; ``cancel`` on an id
        from the returned range reports ``False``.
        """
        _check_delays(delays)
        now = self._now
        seq = self._seq
        inv = self._inv
        mask = self._mask
        buckets = self._buckets
        for d in delays:
            t = now + d
            buckets[int(t * inv) & mask].append([t, seq, callback])
            seq += 1
        first = self._seq
        self._seq = seq
        self._size += seq - first
        if self._size > (mask + 1) * 2 * self._SLOT_LOAD:
            self._resize()
        return range(first, seq)

    def cancel(self, event_id: int) -> bool:
        """Cancel a pending event by id; ``False`` if unknown or already run."""
        entry = self._entries.pop(event_id, None)
        if entry is None:
            return False
        entry[2] = _CANCELLED
        self._size -= 1
        return True

    def _live_entries(self) -> List[Any]:
        return [e for b in self._buckets for e in b if e[2] is not _CANCELLED]

    def _resize(self) -> None:
        """Rebuild the bucket array sized and widthed to the live population.

        Targets ~``_SLOT_LOAD`` live events per slot with the bucket
        "year" (``n * width``) just over the live population's time span.
        """
        live = self._live_entries()
        n = self._mask + 1
        want = max(16, len(live) // self._SLOT_LOAD)
        while n < want:
            n *= 2
        while n > 16 and n >= 4 * want:
            n //= 2
        if len(live) > 2:
            times = sorted(e[0] for e in live)
            span = times[-1] - times[0]
            if span > 0.0:
                self._width = self._YEAR_SPAN * span / n
                self._inv = 1.0 / self._width
        self._mask = n - 1
        buckets: List[List[Any]] = [[] for _ in range(n)]
        inv = self._inv
        mask = self._mask
        for e in live:
            buckets[int(e[0] * inv) & mask].append(e)
        self._buckets = buckets
        self._size = len(live)
        self._gen += 1

    def step(self) -> bool:
        """Dispatch the next live event; ``False`` when the queue is empty."""
        return self.run(max_events=1) == 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in ``(time, seq)`` order; returns the count.

        The cursor walks virtual buckets ``int(t * inv_width)``; an entry
        is due when its virtual bucket is ``<= cursor`` — the exact
        integer mapping used at insertion, so no event can strand behind
        the cursor through float rounding.  Each non-empty slot is sorted
        once and its due prefix drained in bulk.
        """
        limit = _INF if until is None else until
        budget = _INF if max_events is None else float(max_events)
        done = 0
        gen = self._gen
        buckets = self._buckets
        mask = self._mask
        inv = self._inv
        entries = self._entries
        size = self._size
        cursor = int(self._now * inv)
        limit_v = _INF if until is None else int(limit * inv)
        empty_scans = 0
        while size and done < budget:
            bucket = buckets[cursor & mask]
            if bucket:
                bucket.sort()
                # Due prefix: v(t) is monotone in t, so entries with
                # virtual bucket <= cursor sort to the front.
                cut = 0
                blen = len(bucket)
                while cut < blen and int(bucket[cut][0] * inv) <= cursor:
                    cut += 1
                if cut:
                    empty_scans = 0
                    due = bucket[:cut]
                    rest = bucket[cut:]
                    buckets[cursor & mask] = rest
                    bucket = rest
                    base_len = len(rest)
                    di = 0
                    while di < cut:
                        e = due[di]
                        cb = e[2]
                        if cb is _CANCELLED:
                            di += 1
                            continue
                        t = e[0]
                        if t > limit:
                            # nothing earlier can exist; park the rest
                            bucket.extend(due[di:])
                            self._now = limit
                            self._size = size
                            self._processed += done
                            return done
                        if len(e) == 4:
                            del entries[e[1]]
                        size -= 1
                        self._now = t
                        di += 1
                        done += 1
                        if cb is not None:
                            # callbacks may schedule/cancel/resize: sync
                            # size out, reload state after
                            self._size = size
                            cb()
                            size = self._size
                            if self._gen != gen:
                                # a resize rebuilt the buckets; re-home the
                                # undrained due entries and restart the lap
                                gen = self._gen
                                buckets = self._buckets
                                mask = self._mask
                                inv = self._inv
                                limit_v = (
                                    _INF if until is None else int(limit * inv)
                                )
                                for e2 in due[di:]:
                                    buckets[int(e2[0] * inv) & mask].append(e2)
                                cursor = int(self._now * inv)
                                break
                            if len(bucket) != base_len:
                                # the callback scheduled into the slot we
                                # are draining: fold newly due entries in
                                newly = bucket[base_len:]
                                del bucket[base_len:]
                                moved = False
                                for e2 in newly:
                                    if int(e2[0] * inv) <= cursor:
                                        due.append(e2)
                                        moved = True
                                    else:
                                        bucket.append(e2)
                                base_len = len(bucket)
                                if moved:
                                    tail = due[di:]
                                    tail.sort()
                                    due[di:] = tail
                                    cut = len(due)
                        if done >= budget:
                            if di < cut:
                                bucket.extend(due[di:])
                            self._size = size
                            self._processed += done
                            return done
                    continue
            cursor += 1
            if cursor > limit_v:
                self._now = limit
                break
            empty_scans += 1
            if empty_scans > mask + 1:
                # Full lap without a due event: the population is sparse
                # relative to the current width.  Re-estimate and jump
                # straight to the earliest pending event.
                empty_scans = 0
                self._size = size
                live = self._live_entries()
                if not live:
                    break
                if size < (mask + 1) * self._SLOT_LOAD // 4:
                    self._resize()
                    gen = self._gen
                    buckets = self._buckets
                    mask = self._mask
                    inv = self._inv
                    size = self._size
                    limit_v = _INF if until is None else int(limit * inv)
                tmin = min(e[0] for e in live)
                if tmin > limit:
                    self._now = limit
                    break
                cursor = int(tmin * inv)
        self._size = size
        if until is not None and self._now < until and not (size and done >= budget):
            self._now = until
        self._processed += done
        return done


class SimKernel(Protocol):
    """Structural type shared by :class:`HeapKernel` and :class:`CalendarKernel`."""

    @property
    def now(self) -> float: ...

    @property
    def events_processed(self) -> int: ...

    @property
    def pending(self) -> int: ...

    def schedule(self, delay: float, callback: Callback = None) -> int:
        """Schedule ``callback`` ``delay`` seconds from now; returns its id."""
        ...

    def schedule_at(self, time: float, callback: Callback = None) -> int:
        """Schedule ``callback`` at absolute ``time``; returns its id."""
        ...

    def schedule_many(
        self, delays: Sequence[float], callback: Callback = None
    ) -> range:
        """Bulk-schedule one event per delay; returns the contiguous id range."""
        ...

    def cancel(self, event_id: int) -> bool:
        """Cancel a pending event by id; ``False`` if unknown or already fired."""
        ...

    def step(self) -> bool:
        """Dispatch the single earliest event; ``False`` when none are pending."""
        ...

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Dispatch events up to ``until`` and/or ``max_events``; returns the count."""
        ...


def make_kernel(kind: str, **options: Any) -> SimKernel:
    """Build an event kernel by name: ``"heap"`` or ``"calendar"``."""
    if kind == "heap":
        return HeapKernel(**options)
    if kind == "calendar":
        return CalendarKernel(**options)
    raise ValueError(f"unknown kernel kind: {kind!r} (expected 'heap' or 'calendar')")
