"""Synthetic event-kernel workloads shared by benchmarks and tests.

Two classic queue-churn models:

* :func:`run_hold_churn` — the *hold model* from the calendar-queue
  literature: keep a constant population of ``hold`` pending timers
  (one per simulated node) and continuously dequeue/re-insert in
  batches through :meth:`schedule_many`.  This is the bulk
  fire-and-forget path and the workload the ≥1M events/sec target in
  ``benchmarks/bench_sim.py`` is measured on.
* :func:`run_selfclock_churn` — every dispatched event's callback
  reschedules itself with a pseudorandom delay and occasionally cancels
  a neighbouring timer; this exercises the per-event ``schedule`` +
  ``cancel`` registry path.

Both draw delays exclusively from a :func:`repro.utils.rng.as_rng`
generator, so a given ``(kernel, hold, n_events, seed)`` tuple replays
bit-identically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.simulation.kernel import SimKernel
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int

__all__ = ["run_hold_churn", "run_selfclock_churn", "verify_order_trace"]


def run_hold_churn(
    kernel: SimKernel,
    hold: int,
    n_events: int,
    seed: int = 7,
    batch: int = 512,
) -> int:
    """Dequeue/re-insert churn at a constant ``hold`` population.

    Dispatches ``n_events`` no-op timers while re-inserting an equal
    number through ``schedule_many`` in chunks of ``batch``, so the
    structure holds ``hold`` (±``batch``) events throughout.  Returns
    the number of events dispatched.
    """
    check_positive_int(hold, "hold")
    check_positive_int(n_events, "n_events")
    check_positive_int(batch, "batch")
    rng = as_rng(seed)
    delays = rng.uniform(0.5, 1.5, size=n_events + hold).tolist()
    kernel.schedule_many(delays[:hold])
    i = hold
    processed = 0
    while processed < n_events:
        k = min(batch, n_events - processed)
        kernel.run(max_events=k)
        kernel.schedule_many(delays[i : i + k])
        i += k
        processed += k
    return processed


def run_selfclock_churn(
    kernel: SimKernel,
    hold: int,
    n_events: int,
    seed: int = 7,
    cancel_every: int = 16,
) -> int:
    """Self-rescheduling timer churn with periodic cancellation.

    ``hold`` timers each reschedule themselves on firing; every
    ``cancel_every``-th firing also schedules a decoy timer and cancels
    it, exercising the id-registry path.  Returns the number of events
    dispatched (decoys are cancelled before they fire).
    """
    check_positive_int(hold, "hold")
    check_positive_int(n_events, "n_events")
    check_positive_int(cancel_every, "cancel_every")
    rng = as_rng(seed)
    n_delays = 1 << 16
    delays: List[float] = rng.uniform(0.5, 1.5, size=n_delays).tolist()
    mask = n_delays - 1
    fired = [0]
    schedule = kernel.schedule
    cancel = kernel.cancel

    def fire() -> None:
        i = fired[0]
        fired[0] = i + 1
        schedule(delays[i & mask], fire)
        if i % cancel_every == 0:
            decoy = schedule(delays[(i + 1) & mask], fire)
            cancel(decoy)

    for j in range(hold):
        schedule(delays[j & mask], fire)
    return kernel.run(max_events=n_events)


def verify_order_trace(
    kernel: SimKernel, hold: int, n_events: int, seed: int = 7
) -> List[float]:
    """Dispatch a seeded churn and return the dispatch-time trace.

    Used by the kernel-equivalence tests: both kernels must produce the
    exact same trace for the same arguments.
    """
    trace: List[float] = []
    rng = as_rng(seed)
    n_delays = 1 << 12
    delays: List[float] = rng.uniform(0.1, 3.0, size=n_delays).tolist()
    mask = n_delays - 1
    fired = [0]
    schedule = kernel.schedule
    cancel = kernel.cancel
    pending: List[Optional[int]] = [None]

    def fire() -> None:
        trace.append(kernel.now)
        i = fired[0]
        fired[0] = i + 1
        eid = schedule(delays[i & mask], fire)
        if i % 7 == 0:
            prev = pending[0]
            if prev is not None:
                cancel(prev)
            pending[0] = eid
    kernel.schedule_many(delays[:hold], fire)
    kernel.run(max_events=n_events)
    return trace
