"""A minimal deterministic discrete-event scheduler.

Binary-heap event queue with (time, sequence) ordering — events scheduled
for the same instant fire in scheduling order, which keeps CSMA/CA
simulations reproducible.  Events may be cancelled (lazy deletion).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["EventScheduler", "EventHandle"]


class EventHandle:
    """Cancellation token returned by :meth:`EventScheduler.schedule`."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it comes due."""
        self.cancelled = True


class EventScheduler:
    """Event queue with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        handle = EventHandle()
        heapq.heappush(
            self._queue, (self._now + delay, next(self._counter), handle, callback)
        )
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute time (``>= now``)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self.schedule(time - self._now, callback)

    def schedule_many(
        self, delays: Sequence[float], callback: Callable[[], None]
    ) -> List[EventHandle]:
        """Batch-insert one event per delay; returns the handles in order.

        API parity with the `repro.simulation.kernel` schedulers — for
        throughput-critical bulk insertion prefer those (their batch path
        skips handle allocation entirely).
        """
        if len(delays) > 0 and min(delays) < 0.0:
            raise ValueError("delays must be non-negative")
        now = self._now
        queue = self._queue
        push = heapq.heappush
        counter = self._counter
        handles = [EventHandle() for _ in delays]
        for d, handle in zip(delays, handles):
            push(queue, (now + d, next(counter), handle, callback))
        return handles

    def step(self) -> bool:
        """Execute the next non-cancelled event; returns False when empty."""
        while self._queue:
            time, _, handle, callback = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            callback()
            self._events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order, up to a time horizon and/or event budget.

        With ``until`` set, the clock is advanced to exactly ``until`` when
        the queue drains earlier or the next event lies beyond the horizon
        (events beyond the horizon stay queued).
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            time, _, handle, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            callback()
            self._events_processed += 1
            executed += 1
        if until is not None:
            self._now = max(self._now, until)
