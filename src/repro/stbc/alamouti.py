"""The Alamouti space-time block code (2 transmit antennas, rate 1).

Per block of two symbols ``(s1, s2)`` the two antennas transmit::

    slot 1:   antenna 1: s1      antenna 2: s2
    slot 2:   antenna 1: -s2*    antenna 2: s1*

With channel ``h_j = (h_{1j}, h_{2j})`` constant over the block (flat block
fading, as the paper assumes), matched-filter combining across the ``mr``
receive antennas is exact maximum-likelihood and yields per-symbol SNR
proportional to ``||H||_F^2`` — the diversity behaviour that formulas
(5)/(6) average over.

These standalone functions are the direct, readable implementation; the
generic engine in :mod:`repro.stbc.ostbc` reproduces them exactly (asserted
in tests) and generalizes to 3–4 antennas.
"""

from __future__ import annotations

import numpy as np

__all__ = ["alamouti_encode", "alamouti_decode"]


def alamouti_encode(symbols: np.ndarray) -> np.ndarray:
    """Encode pairs of symbols into Alamouti transmission blocks.

    Parameters
    ----------
    symbols:
        Complex array of even length ``2 n``.

    Returns
    -------
    ndarray of shape ``(n, 2, 2)``: ``out[block, time_slot, antenna]``.
    No power normalization is applied here; the link simulator divides by
    ``sqrt(mt)`` to satisfy the total-power constraint.
    """
    s = np.asarray(symbols, dtype=complex)
    if s.ndim != 1 or s.size % 2 != 0:
        raise ValueError("symbols must be 1-D with even length")
    s = s.reshape(-1, 2)
    n = s.shape[0]
    out = np.empty((n, 2, 2), dtype=complex)
    out[:, 0, 0] = s[:, 0]
    out[:, 0, 1] = s[:, 1]
    out[:, 1, 0] = -np.conj(s[:, 1])
    out[:, 1, 1] = np.conj(s[:, 0])
    return out


def alamouti_decode(received: np.ndarray, channel: np.ndarray) -> np.ndarray:
    """Matched-filter (exact ML) decoding of Alamouti blocks.

    Parameters
    ----------
    received:
        ``(n, 2, mr)`` array: ``received[block, time_slot, rx_antenna]``.
    channel:
        ``(n, mr, 2)`` channel matrices (constant per block), ``channel[b, j, i]``
        is the gain from transmit antenna ``i`` to receive antenna ``j``.

    Returns
    -------
    ndarray of shape ``(2 n,)`` — unit-gain symbol estimates
    (``s_hat = s + noise'`` with the block's fading gain removed), ready for
    hard-decision demodulation.
    """
    y = np.asarray(received, dtype=complex)
    h = np.asarray(channel, dtype=complex)
    if y.ndim != 3 or y.shape[1] != 2:
        raise ValueError(f"received must have shape (n, 2, mr), got {y.shape}")
    if h.ndim != 3 or h.shape[2] != 2 or h.shape[0] != y.shape[0] or h.shape[1] != y.shape[2]:
        raise ValueError(
            f"channel shape {h.shape} inconsistent with received shape {y.shape}"
        )
    h1 = h[:, :, 0]  # (n, mr)
    h2 = h[:, :, 1]
    y1 = y[:, 0, :]  # slot 1
    y2 = y[:, 1, :]  # slot 2

    norm = np.sum(np.abs(h) ** 2, axis=(1, 2))  # ||H||_F^2 per block
    if np.any(norm == 0.0):
        raise ValueError("channel block with zero Frobenius norm cannot be decoded")

    s1_hat = np.sum(np.conj(h1) * y1 + h2 * np.conj(y2), axis=1) / norm
    s2_hat = np.sum(np.conj(h2) * y1 - h1 * np.conj(y2), axis=1) / norm
    return np.stack([s1_hat, s2_hat], axis=1).reshape(-1)
