"""Receive diversity combining: MRC, EGC, SC.

Operates on per-symbol copies received over independent branches — either
the ``mr`` antennas of a SIMO link or the independent relay streams of the
overlay testbed ("The equal gain combination is used for overlay systems",
Section 6.4).

All combiners take

* ``received`` — ``(n, branches)`` complex observations ``y = h s + n``;
* ``channel`` — ``(n, branches)`` complex branch gains ``h``;

and return ``(n,)`` unit-gain symbol estimates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["maximal_ratio_combine", "equal_gain_combine", "selection_combine"]


def _validate(received: np.ndarray, channel: np.ndarray):
    y = np.asarray(received, dtype=complex)
    h = np.asarray(channel, dtype=complex)
    if y.ndim != 2 or y.shape != h.shape:
        raise ValueError(
            f"received and channel must share shape (n, branches); "
            f"got {y.shape} and {h.shape}"
        )
    return y, h


def maximal_ratio_combine(received: np.ndarray, channel: np.ndarray) -> np.ndarray:
    """MRC: ``sum h* y / sum |h|^2`` — SNR-optimal linear combining."""
    y, h = _validate(received, channel)
    weight = np.sum(np.abs(h) ** 2, axis=1)
    if np.any(weight == 0.0):
        raise ValueError("all-zero channel row cannot be combined")
    return np.sum(np.conj(h) * y, axis=1) / weight


def equal_gain_combine(received: np.ndarray, channel: np.ndarray) -> np.ndarray:
    """EGC: co-phase each branch and average with equal weights.

    ``sum e^{-j angle(h)} y / sum |h|`` — needs only the channel phase plus
    a scalar normalization, which is why the paper's USRP testbed uses it.
    """
    y, h = _validate(received, channel)
    mags = np.abs(h)
    norm = np.sum(mags, axis=1)
    if np.any(norm == 0.0):
        raise ValueError("all-zero channel row cannot be combined")
    phases = np.exp(-1j * np.angle(h))
    return np.sum(phases * y, axis=1) / norm


def selection_combine(received: np.ndarray, channel: np.ndarray) -> np.ndarray:
    """SC: use only the strongest branch, ``y_k / h_k`` with ``k = argmax |h|``."""
    y, h = _validate(received, channel)
    best = np.argmax(np.abs(h), axis=1)
    rows = np.arange(y.shape[0])
    h_best = h[rows, best]
    if np.any(h_best == 0.0):
        raise ValueError("selected branch has zero gain")
    return y[rows, best] / h_best
