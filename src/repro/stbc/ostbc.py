"""Generic orthogonal space-time block codes via linear dispersion.

Every OSTBC can be written as a linear-dispersion code

    X(s) = sum_k  Re(s_k) * A_k  +  1j * Im(s_k) * B_k

with real ``T x mt`` dispersion matrices ``A_k``, ``B_k``.  Orthogonality of
the design makes the stacked real least-squares system diagonal, so decoding
is a matched filter followed by an element-wise divide — exact ML, fully
vectorized across fading blocks.

Shipped designs (``ostbc_for``):

====  =====  ====  ======  =================================================
mt    T      K     rate    design
====  =====  ====  ======  =================================================
1     1      1     1       trivial (SISO / pure transmit passthrough)
2     2      2     1       Alamouti
3     8      4     1/2     Tarokh G3 (columns 1-3 of G4)
4     8      4     1/2     Tarokh G4  (O4 over s stacked on O4 over s*)
====  =====  ====  ======  =================================================

The rate-1/2 G3/G4 designs are the classical full-diversity complex
orthogonal designs for 3-4 antennas (Tarokh, Seshadri & Calderbank 1999),
and the family used in the Cui-Goldsmith-Bahai energy analysis the paper's
model is built on.
"""

from __future__ import annotations

from functools import lru_cache
import numpy as np

from repro.utils.rng import RngLike, as_rng

__all__ = ["OSTBC", "ostbc_for"]


def _real_orthogonal_design_4() -> np.ndarray:
    """The 4x4 real orthogonal design O4 as a (4, 4, 4) coefficient tensor.

    ``O4[t, m, k]`` is the signed coefficient of symbol ``k`` transmitted by
    antenna ``m`` in slot ``t``::

        [  s1   s2   s3   s4 ]
        [ -s2   s1  -s4   s3 ]
        [ -s3   s4   s1  -s2 ]
        [ -s4  -s3   s2   s1 ]
    """
    coeffs = np.zeros((4, 4, 4))
    layout = [
        [(0, +1), (1, +1), (2, +1), (3, +1)],
        [(1, -1), (0, +1), (3, -1), (2, +1)],
        [(2, -1), (3, +1), (0, +1), (1, -1)],
        [(3, -1), (2, -1), (1, +1), (0, +1)],
    ]
    for t, row in enumerate(layout):
        for m, (k, sign) in enumerate(row):
            coeffs[t, m, k] = sign
    return coeffs


class OSTBC:
    """A linear-dispersion space-time block code.

    Parameters
    ----------
    a, b:
        Real dispersion tensors of shape ``(K, T, mt)``: ``a[k]`` multiplies
        ``Re(s_k)``, ``b[k]`` multiplies ``1j * Im(s_k)``.
    name:
        Display name.
    rng:
        Seed or generator for the orthogonality self-check's random test
        channels.  The default (seed 12345) keeps construction deterministic
        run-to-run; the check is a structural property, so any seed accepts
        exactly the orthogonal designs.

    The constructor validates the orthogonality property on random channels,
    because the decoder's element-wise divide is only exact ML for orthogonal
    designs.
    """

    def __init__(self, a: np.ndarray, b: np.ndarray, name: str, rng: RngLike = 12345):
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape != b.shape or a.ndim != 3:
            raise ValueError("dispersion tensors must share shape (K, T, mt)")
        self._a = a
        self._b = b
        self.name = name
        self.n_symbols, self.block_length, self.n_tx = a.shape
        self._check_orthogonality(as_rng(rng))

    # ------------------------------------------------------------------ #

    @property
    def rate(self) -> float:
        """Symbols per channel use, ``K / T``."""
        return self.n_symbols / self.block_length

    @property
    def dispersion_a(self) -> np.ndarray:
        """Read-only view of the real-part dispersion tensor ``(K, T, mt)``."""
        view = self._a.view()
        view.flags.writeable = False
        return view

    @property
    def dispersion_b(self) -> np.ndarray:
        """Read-only view of the imag-part dispersion tensor ``(K, T, mt)``."""
        view = self._b.view()
        view.flags.writeable = False
        return view

    @property
    def power_per_slot(self) -> float:
        """Average total transmit power per time slot for unit-energy symbols.

        Used by simulators to normalize to a total-power constraint:
        transmit ``X / sqrt(power_per_slot)``.
        """
        # E|s_k|^2 = 1 split evenly between Re/Im; the expected power of
        # entry (t, m) is sum_k (a^2 + b^2)/2, averaged over slots.
        per_entry = (self._a**2 + self._b**2) / 2.0
        return float(per_entry.sum() / self.block_length)

    def _check_orthogonality(self, rng: np.random.Generator) -> None:
        for mr in (1, 2):
            h = rng.standard_normal((mr, self.n_tx)) + 1j * rng.standard_normal(
                (mr, self.n_tx)
            )
            m = self._design_matrix(h[None, :, :])[0]
            gram = m.T @ m
            off = gram - np.diag(np.diag(gram))
            if np.max(np.abs(off)) > 1e-9 * max(1.0, np.max(np.abs(gram))):
                raise ValueError(
                    f"dispersion matrices of {self.name!r} are not orthogonal"
                )

    # ------------------------------------------------------------------ #

    def encode(self, symbols: np.ndarray) -> np.ndarray:
        """Map symbols to transmission blocks.

        Parameters
        ----------
        symbols:
            Complex 1-D array whose length is a multiple of ``n_symbols``.

        Returns
        -------
        ndarray ``(n_blocks, T, mt)`` — unnormalized (see ``power_per_slot``).
        """
        s = np.asarray(symbols, dtype=complex)
        if s.ndim != 1 or s.size % self.n_symbols != 0:
            raise ValueError(
                f"symbol count must be a multiple of {self.n_symbols}, got {s.size}"
            )
        s = s.reshape(-1, self.n_symbols)
        # X[b, t, m] = sum_k  Re(s[b,k]) a[k,t,m] + 1j Im(s[b,k]) b[k,t,m]
        x = np.einsum("bk,ktm->btm", s.real, self._a) + 1j * np.einsum(
            "bk,ktm->btm", s.imag, self._b
        )
        return x

    def _design_matrix(self, h: np.ndarray) -> np.ndarray:
        """Stacked-real design matrix per block.

        ``h`` has shape ``(n_blocks, mr, mt)``.  Returns ``(n_blocks,
        2*T*mr, 2K)`` real; column ``2k`` corresponds to ``Re(s_k)``,
        column ``2k+1`` to ``Im(s_k)``.
        """
        n_blocks, mr, mt = h.shape
        if mt != self.n_tx:
            raise ValueError(f"channel has {mt} tx antennas, code needs {self.n_tx}")
        # Y = X @ H^T : contribution of Re(s_k) is A_k @ H^T, of Im(s_k) is
        # 1j * B_k @ H^T.
        ya = np.einsum("ktm,bjm->bktj", self._a, h)  # (n_blocks, K, T, mr)
        yb = 1j * np.einsum("ktm,bjm->bktj", self._b, h)
        cols = np.empty((n_blocks, 2 * self.n_symbols, self.block_length, mr), complex)
        cols[:, 0::2] = ya
        cols[:, 1::2] = yb
        flat = cols.reshape(n_blocks, 2 * self.n_symbols, -1)
        m = np.concatenate([flat.real, flat.imag], axis=2)  # (nb, 2K, 2*T*mr)
        return np.transpose(m, (0, 2, 1))

    def decode(self, received: np.ndarray, channel: np.ndarray) -> np.ndarray:
        """Matched-filter ML decoding.

        Parameters
        ----------
        received:
            ``(n_blocks, T, mr)`` complex.
        channel:
            ``(n_blocks, mr, mt)`` complex, constant per block.

        Returns
        -------
        1-D complex array of ``n_blocks * K`` unit-gain symbol estimates.
        """
        y = np.asarray(received, dtype=complex)
        h = np.asarray(channel, dtype=complex)
        if y.ndim != 3 or y.shape[1] != self.block_length:
            raise ValueError(f"received must be (n, {self.block_length}, mr)")
        if h.shape[0] != y.shape[0] or h.shape[1] != y.shape[2]:
            raise ValueError("channel shape inconsistent with received shape")
        m = self._design_matrix(h)  # (nb, 2*T*mr, 2K)
        y_flat = y.reshape(y.shape[0], -1)
        y_stack = np.concatenate([y_flat.real, y_flat.imag], axis=1)  # (nb, 2*T*mr)
        num = np.einsum("bij,bi->bj", m, y_stack)  # M^T y
        diag = np.einsum("bij,bij->bj", m, m)  # diag(M^T M)
        if np.any(diag == 0.0):
            raise ValueError("zero-gain channel block cannot be decoded")
        z = num / diag
        return (z[:, 0::2] + 1j * z[:, 1::2]).reshape(-1)


@lru_cache(maxsize=None)
def ostbc_for(mt: int) -> OSTBC:
    """The canonical OSTBC for ``mt`` transmit antennas (see module docs)."""
    if mt < 1 or mt > 4:
        raise ValueError(f"ostbc_for supports mt in 1..4, got {mt}")
    if mt == 1:
        a = np.ones((1, 1, 1))
        return OSTBC(a, a.copy(), "SISO")
    if mt == 2:
        a = np.zeros((2, 2, 2))
        b = np.zeros((2, 2, 2))
        # slot 0: [s1, s2] ; slot 1: [-s2*, s1*]
        a[0, 0, 0] = 1.0
        b[0, 0, 0] = 1.0
        a[1, 0, 1] = 1.0
        b[1, 0, 1] = 1.0
        a[1, 1, 0] = -1.0
        b[1, 1, 0] = 1.0  # -s2* = -Re(s2) + 1j Im(s2)
        a[0, 1, 1] = 1.0
        b[0, 1, 1] = -1.0  # s1*  =  Re(s1) - 1j Im(s1)
        return OSTBC(a, b, "Alamouti")

    o4 = _real_orthogonal_design_4()  # (T=4, mt=4, K=4) coefficients
    coeffs = o4 if mt == 4 else o4[:, :3, :]
    t_half, n_tx, k = coeffs.shape
    a = np.zeros((k, 2 * t_half, n_tx))
    b = np.zeros((k, 2 * t_half, n_tx))
    for kk in range(k):
        # rows 1..4 carry s_k, rows 5..8 carry s_k*
        a[kk, :t_half, :] = coeffs[:, :, kk].copy()
        b[kk, :t_half, :] = coeffs[:, :, kk].copy()
        a[kk, t_half:, :] = coeffs[:, :, kk].copy()
        b[kk, t_half:, :] = -coeffs[:, :, kk].copy()
    return OSTBC(a, b, f"G{mt}")
