"""Space-time block codes and diversity combining.

The paper's cooperative MIMO links are "coded with space-time block codes
(such as Alamouti code)" over flat Rayleigh fading (Section 2.3).  This
package provides:

* :mod:`repro.stbc.alamouti` — the 2-antenna rate-1 Alamouti code;
* :mod:`repro.stbc.ostbc` — a generic linear-dispersion OSTBC engine with
  the canonical Tarokh designs for 1–4 transmit antennas (identity,
  Alamouti, G3, G4), which covers the paper's sweep of ``mt`` = 1..4;
* :mod:`repro.stbc.combining` — MRC / EGC / SC receive combining (the
  testbed experiments use equal-gain combination).
"""

from repro.stbc.alamouti import alamouti_decode, alamouti_encode
from repro.stbc.combining import (
    equal_gain_combine,
    maximal_ratio_combine,
    selection_combine,
)
from repro.stbc.ostbc import OSTBC, ostbc_for

__all__ = [
    "alamouti_encode",
    "alamouti_decode",
    "OSTBC",
    "ostbc_for",
    "maximal_ratio_combine",
    "equal_gain_combine",
    "selection_combine",
]
