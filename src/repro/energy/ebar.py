"""Solving for ``e_bar_b(p, b, mt, mr)`` — formulas (5) and (6).

The paper defines ``e_bar_b`` implicitly: it is the transmit-side required
received energy per bit such that the *average* BER over the Rayleigh MIMO
channel equals the target ``p``::

    p = E_H[ (4/b)(1 - 2^{-b/2}) Q( sqrt( 3b/(M-1) * gamma_b ) ) ]     (b >= 2)
    p = E_H[ Q( sqrt( 2 gamma_b ) ) ]                                  (b = 1)
    gamma_b = ||H||_F^2 * e_bar_b / (N_0 * mt)

With i.i.d. unit-power complex Gaussian entries, ``G = ||H||_F^2`` is
Gamma(k = mt*mr, 1)-distributed, so the expectation has the exact classical
closed form implemented in
:func:`repro.modulation.theory.rayleigh_diversity_avg_qfunc`.  The solver
inverts the (strictly monotone) map ``e_bar_b -> average BER`` with Brent's
method in log10 space.

Validation against the paper (Section 6.2 text): for ``p = 0.001, b = 2``
the paper quotes ``e_bar_b = 1.90e-18`` (SISO) and ``3.20e-20`` (2x3 MIMO);
this solver produces 2.0e-18 and 2.1e-20 — same orders, same ~100x
SISO-to-MIMO gap (the residual offset is an unstated normalization in the
paper's tabulation; see DESIGN.md section 6).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
from scipy import optimize

from repro.channel.rayleigh import rayleigh_mimo_channel
from repro.modulation.theory import (
    instantaneous_ber,
    mqam_ber_coefficients,
    rayleigh_diversity_avg_qfunc,
)
from repro.utils.rng import RngLike
from repro.utils.units import (
    Joules,
    JoulesArray,
    JoulesLike,
    WattsPerHz,
    WattsPerHzLike,
    dbm_per_hz_to_watts_per_hz,
)
from repro.utils.validation import check_positive, check_positive_int, check_probability

ArrayLike = Union[float, np.ndarray]

__all__ = ["average_ber", "solve_ebar", "solve_ebar_batch", "average_ber_monte_carlo"]

#: Default receiver-referred noise PSD N_0 = -171 dBm/Hz in W/Hz.
DEFAULT_N0: WattsPerHz = float(dbm_per_hz_to_watts_per_hz(-171.0))


#: Valid ``e_bar_b`` normalization conventions (see :func:`average_ber`).
CONVENTIONS = ("paper", "diversity_only")


def average_ber(
    ebar: JoulesLike,
    b: int,
    mt: int,
    mr: int,
    n0: WattsPerHz = DEFAULT_N0,
    convention: str = "paper",
) -> ArrayLike:
    """Average BER over the Rayleigh MIMO channel at received energy ``ebar``.

    Parameters
    ----------
    ebar:
        Required received energy per bit [J]; broadcasts over arrays.
    b:
        Constellation size in bits/symbol (>= 1).
    mt, mr:
        Cooperative transmit / receive node counts (>= 1).
    n0:
        Noise PSD [W/Hz].
    convention:
        ``"paper"`` uses the printed formula
        ``gamma_b = ||H||_F^2 e_bar_b / (N_0 mt)`` — the per-antenna power
        split appears inside ``gamma_b`` *and* again as the ``1/mt`` factor
        of formula (3).  ``"diversity_only"`` drops the ``mt`` divisor
        (``gamma_b = ||H||_F^2 e_bar_b / N_0``), making the table symmetric
        in (mt, mr).  The paper's Figure 6 numbers (D3/D2 = sqrt(m)) are
        only consistent with the symmetric table; see EXPERIMENTS.md for
        the full analysis.  Both conventions produce identical diversity
        *orders* and identical orderings everywhere except that asymmetry.
    """
    b = check_positive_int(b, "b")
    mt = check_positive_int(mt, "mt")
    mr = check_positive_int(mr, "mr")
    n0 = check_positive(n0, "n0")
    if convention not in CONVENTIONS:
        raise ValueError(f"convention must be one of {CONVENTIONS}, got {convention!r}")
    e = np.asarray(ebar, dtype=float)
    if np.any(e < 0.0):
        raise ValueError("ebar must be non-negative")
    a, g = mqam_ber_coefficients(b)
    # Instantaneous BER is a*Q(sqrt(g * gamma_b)); writing the argument as
    # 2*c*G puts it in the canonical closed-form shape.
    divisor = n0 * mt if convention == "paper" else n0
    c = g * e / (2.0 * divisor)
    return a * rayleigh_diversity_avg_qfunc(c, mt * mr)


def solve_ebar(
    p: float,
    b: int,
    mt: int,
    mr: int,
    n0: WattsPerHz = DEFAULT_N0,
    xtol: float = 1e-12,
    convention: str = "paper",
) -> Joules:
    """Invert :func:`average_ber`: the ``e_bar_b`` achieving target BER ``p``.

    Raises
    ------
    ValueError
        If ``p`` is not attainable below the modulation's zero-SNR BER
        ceiling ``a/2`` (e.g. asking 16-QAM for BER 0.45).
    """
    p = check_probability(p, "p")
    a, _ = mqam_ber_coefficients(b)
    ceiling = a / 2.0  # BER at ebar -> 0 (Q(0) = 1/2)
    if p >= ceiling:
        raise ValueError(
            f"target BER {p} is not below the zero-energy ceiling {ceiling:.4g} "
            f"for b={b}; any energy achieves it"
        )

    def objective(log10_e: float) -> float:
        return float(average_ber(10.0**log10_e, b, mt, mr, n0, convention)) - p

    lo, hi = -26.0, -8.0
    # Expand the bracket defensively for extreme (p, n0) combinations.
    while objective(lo) < 0.0 and lo > -60.0:
        lo -= 5.0
    while objective(hi) > 0.0 and hi < 10.0:
        hi += 5.0
    if objective(lo) < 0.0 or objective(hi) > 0.0:
        raise RuntimeError("failed to bracket the e_bar_b root")
    root = optimize.brentq(objective, lo, hi, xtol=xtol)
    return float(10.0**root)


def _mqam_coefficients_array(b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`repro.modulation.theory.mqam_ber_coefficients`.

    ``b`` is an integer array; returns float arrays ``(a, g)`` elementwise
    identical to the scalar helper (same operation order, so results are
    bit-equal where the scalar path is used).
    """
    bf = b.astype(float)
    with np.errstate(over="ignore"):
        a_qam = 4.0 / bf * (1.0 - 2.0 ** (-bf / 2.0))
        g_qam = 3.0 * bf / (2.0**bf - 1.0)
    a = np.where(b == 1, 1.0, a_qam)
    g = np.where(b == 1, 2.0, g_qam)
    return a, g


def _rayleigh_diversity_avg_qfunc_array(c: np.ndarray, k: np.ndarray) -> np.ndarray:
    """``E[Q(sqrt(2 c G))]`` with *per-element* diversity order ``k``.

    Same closed form as
    :func:`repro.modulation.theory.rayleigh_diversity_avg_qfunc`, evaluated
    for an array of diversity orders at once: terms ``i >= k`` of the padded
    series are masked to zero (adding exact zeros does not change the sum).
    """
    from scipy import special

    mu = np.sqrt(c / (1.0 + c))
    half_minus = (1.0 - mu) / 2.0
    half_plus = (1.0 + mu) / 2.0
    k_max = int(k.max())
    i = np.arange(k_max)
    binoms = special.comb(k[..., None] - 1 + i, i)  # C(k-1+i, i)
    powers = half_plus[..., None] ** i
    series = np.sum(np.where(i < k[..., None], binoms * powers, 0.0), axis=-1)
    return half_minus**k * series


def solve_ebar_batch(
    p: ArrayLike,
    b: ArrayLike,
    mt: ArrayLike,
    mr: ArrayLike,
    n0: WattsPerHzLike = DEFAULT_N0,
    xtol: float = 1e-12,
    convention: str = "paper",
) -> JoulesArray:
    """Vectorized :func:`solve_ebar`: all grid points converge simultaneously.

    Broadcasts ``p``, ``b``, ``mt``, ``mr`` and ``n0`` against each other and
    inverts the average-BER relation for every point at once with a bracketed
    bisection in log10 space (the same ``[-26, -8]`` starting bracket and the
    same defensive expansion as the scalar solver).  This is the kernel the
    "Preprocessing" table build runs on: one call replaces thousands of
    per-point ``brentq`` root-finds.

    Unlike the scalar solver, *infeasible* points — a target BER at or above
    the modulation's zero-energy ceiling ``a/2``, outside ``(0, 1)``, or (for
    pathological ``n0``) unbracketable — are masked to NaN instead of
    raising, so one call can cover a mixed feasible/infeasible grid.

    Parameters
    ----------
    p, b, mt, mr, n0:
        Broadcastable arrays (or scalars) of BER targets, constellation
        sizes, node counts and noise PSDs.  ``b``, ``mt``, ``mr`` must be
        integer-valued and >= 1; ``n0`` must be positive.
    xtol:
        Absolute tolerance on the log10-space root (matches the scalar
        solver's ``brentq`` tolerance; the two agree to ~1e-11 relative).
    convention:
        ``e_bar_b`` normalization, as in :func:`average_ber`.

    Returns
    -------
    ``e_bar_b`` as a float ndarray of the broadcast shape (0-d for all-scalar
    input), with NaN at infeasible points.
    """
    if convention not in CONVENTIONS:
        raise ValueError(f"convention must be one of {CONVENTIONS}, got {convention!r}")
    p_a, b_a, mt_a, mr_a, n0_a = np.broadcast_arrays(
        np.asarray(p, dtype=float),
        np.asarray(b),
        np.asarray(mt),
        np.asarray(mr),
        np.asarray(n0, dtype=float),
    )
    for name, arr in (("b", b_a), ("mt", mt_a), ("mr", mr_a)):
        if not np.issubdtype(arr.dtype, np.number) or np.any(arr != np.floor(arr)):
            raise ValueError(f"{name} must be integer-valued")
        if np.any(arr < 1):
            raise ValueError(f"{name} must be >= 1")
    if np.any(n0_a <= 0.0) or not np.all(np.isfinite(n0_a)):
        raise ValueError("n0 must be strictly positive and finite")

    shape = p_a.shape
    p_f = p_a.reshape(-1)
    b_f = b_a.reshape(-1).astype(int)
    mt_f = mt_a.reshape(-1).astype(int)
    mr_f = mr_a.reshape(-1).astype(int)
    n0_f = n0_a.reshape(-1)

    a_coef, g_coef = _mqam_coefficients_array(b_f)
    feasible = (p_f > 0.0) & (p_f < 1.0) & (p_f < a_coef / 2.0)

    out = np.full(p_f.shape, np.nan)
    if np.any(feasible):
        idx = np.nonzero(feasible)[0]
        target = p_f[idx]
        a_s = a_coef[idx]
        divisor = n0_f[idx] * mt_f[idx] if convention == "paper" else n0_f[idx]
        scale = g_coef[idx] / (2.0 * divisor)  # c = scale * ebar
        k = mt_f[idx] * mr_f[idx]

        def objective(log10_e: np.ndarray) -> np.ndarray:
            c = scale * 10.0**log10_e
            return a_s * _rayleigh_diversity_avg_qfunc_array(c, k) - target

        lo = np.full(idx.shape, -26.0)
        hi = np.full(idx.shape, -8.0)
        # Expand the bracket defensively, exactly as the scalar solver does.
        for _ in range(8):
            need = (objective(lo) < 0.0) & (lo > -60.0)
            if not need.any():
                break
            lo[need] -= 5.0
        for _ in range(4):
            need = (objective(hi) > 0.0) & (hi < 10.0)
            if not need.any():
                break
            hi[need] += 5.0
        bracketed = (objective(lo) >= 0.0) & (objective(hi) <= 0.0)

        # Bisection: the objective is strictly decreasing in log10(e).
        for _ in range(512):
            if not np.any((hi - lo) > xtol):
                break
            mid = 0.5 * (lo + hi)
            above = objective(mid) > 0.0
            lo = np.where(above, mid, lo)
            hi = np.where(above, hi, mid)
        root = 0.5 * (lo + hi)
        out[idx] = np.where(bracketed, 10.0**root, np.nan)
    return out.reshape(shape)


def average_ber_monte_carlo(
    ebar: Joules,
    b: int,
    mt: int,
    mr: int,
    n0: WattsPerHz = DEFAULT_N0,
    n_channels: int = 200_000,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of :func:`average_ber` from explicit ``H`` draws.

    Cross-check used by the test suite: draws ``n_channels`` Rayleigh MIMO
    matrices, evaluates the instantaneous BER kernel at each ``gamma_b`` and
    averages.  Agrees with the closed form to Monte-Carlo accuracy.
    """
    check_positive(ebar, "ebar")
    h = rayleigh_mimo_channel(mt, mr, n_channels, rng)
    frob = np.sum(np.abs(h) ** 2, axis=(1, 2))
    gamma_b = frob * ebar / (n0 * mt)
    return float(np.mean(instantaneous_ber(gamma_b, b)))
