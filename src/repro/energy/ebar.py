"""Solving for ``e_bar_b(p, b, mt, mr)`` — formulas (5) and (6).

The paper defines ``e_bar_b`` implicitly: it is the transmit-side required
received energy per bit such that the *average* BER over the Rayleigh MIMO
channel equals the target ``p``::

    p = E_H[ (4/b)(1 - 2^{-b/2}) Q( sqrt( 3b/(M-1) * gamma_b ) ) ]     (b >= 2)
    p = E_H[ Q( sqrt( 2 gamma_b ) ) ]                                  (b = 1)
    gamma_b = ||H||_F^2 * e_bar_b / (N_0 * mt)

With i.i.d. unit-power complex Gaussian entries, ``G = ||H||_F^2`` is
Gamma(k = mt*mr, 1)-distributed, so the expectation has the exact classical
closed form implemented in
:func:`repro.modulation.theory.rayleigh_diversity_avg_qfunc`.  The solver
inverts the (strictly monotone) map ``e_bar_b -> average BER`` with Brent's
method in log10 space.

Validation against the paper (Section 6.2 text): for ``p = 0.001, b = 2``
the paper quotes ``e_bar_b = 1.90e-18`` (SISO) and ``3.20e-20`` (2x3 MIMO);
this solver produces 2.0e-18 and 2.1e-20 — same orders, same ~100x
SISO-to-MIMO gap (the residual offset is an unstated normalization in the
paper's tabulation; see DESIGN.md section 6).
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import optimize

from repro.channel.rayleigh import rayleigh_mimo_channel
from repro.modulation.theory import (
    instantaneous_ber,
    mqam_ber_coefficients,
    rayleigh_diversity_avg_qfunc,
)
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive, check_positive_int, check_probability

ArrayLike = Union[float, np.ndarray]

__all__ = ["average_ber", "solve_ebar", "average_ber_monte_carlo"]

#: Default receiver-referred noise PSD N_0 = -171 dBm/Hz in W/Hz.
DEFAULT_N0 = 10.0 ** (-171.0 / 10.0) * 1e-3


#: Valid ``e_bar_b`` normalization conventions (see :func:`average_ber`).
CONVENTIONS = ("paper", "diversity_only")


def average_ber(
    ebar: ArrayLike,
    b: int,
    mt: int,
    mr: int,
    n0: float = DEFAULT_N0,
    convention: str = "paper",
) -> ArrayLike:
    """Average BER over the Rayleigh MIMO channel at received energy ``ebar``.

    Parameters
    ----------
    ebar:
        Required received energy per bit [J]; broadcasts over arrays.
    b:
        Constellation size in bits/symbol (>= 1).
    mt, mr:
        Cooperative transmit / receive node counts (>= 1).
    n0:
        Noise PSD [W/Hz].
    convention:
        ``"paper"`` uses the printed formula
        ``gamma_b = ||H||_F^2 e_bar_b / (N_0 mt)`` — the per-antenna power
        split appears inside ``gamma_b`` *and* again as the ``1/mt`` factor
        of formula (3).  ``"diversity_only"`` drops the ``mt`` divisor
        (``gamma_b = ||H||_F^2 e_bar_b / N_0``), making the table symmetric
        in (mt, mr).  The paper's Figure 6 numbers (D3/D2 = sqrt(m)) are
        only consistent with the symmetric table; see EXPERIMENTS.md for
        the full analysis.  Both conventions produce identical diversity
        *orders* and identical orderings everywhere except that asymmetry.
    """
    b = check_positive_int(b, "b")
    mt = check_positive_int(mt, "mt")
    mr = check_positive_int(mr, "mr")
    n0 = check_positive(n0, "n0")
    if convention not in CONVENTIONS:
        raise ValueError(f"convention must be one of {CONVENTIONS}, got {convention!r}")
    e = np.asarray(ebar, dtype=float)
    if np.any(e < 0.0):
        raise ValueError("ebar must be non-negative")
    a, g = mqam_ber_coefficients(b)
    # Instantaneous BER is a*Q(sqrt(g * gamma_b)); writing the argument as
    # 2*c*G puts it in the canonical closed-form shape.
    divisor = n0 * mt if convention == "paper" else n0
    c = g * e / (2.0 * divisor)
    return a * rayleigh_diversity_avg_qfunc(c, mt * mr)


def solve_ebar(
    p: float,
    b: int,
    mt: int,
    mr: int,
    n0: float = DEFAULT_N0,
    xtol: float = 1e-12,
    convention: str = "paper",
) -> float:
    """Invert :func:`average_ber`: the ``e_bar_b`` achieving target BER ``p``.

    Raises
    ------
    ValueError
        If ``p`` is not attainable below the modulation's zero-SNR BER
        ceiling ``a/2`` (e.g. asking 16-QAM for BER 0.45).
    """
    p = check_probability(p, "p")
    a, _ = mqam_ber_coefficients(b)
    ceiling = a / 2.0  # BER at ebar -> 0 (Q(0) = 1/2)
    if p >= ceiling:
        raise ValueError(
            f"target BER {p} is not below the zero-energy ceiling {ceiling:.4g} "
            f"for b={b}; any energy achieves it"
        )

    def objective(log10_e: float) -> float:
        return float(average_ber(10.0**log10_e, b, mt, mr, n0, convention)) - p

    lo, hi = -26.0, -8.0
    # Expand the bracket defensively for extreme (p, n0) combinations.
    while objective(lo) < 0.0 and lo > -60.0:
        lo -= 5.0
    while objective(hi) > 0.0 and hi < 10.0:
        hi += 5.0
    if objective(lo) < 0.0 or objective(hi) > 0.0:
        raise RuntimeError("failed to bracket the e_bar_b root")
    root = optimize.brentq(objective, lo, hi, xtol=xtol)
    return float(10.0**root)


def average_ber_monte_carlo(
    ebar: float,
    b: int,
    mt: int,
    mr: int,
    n0: float = DEFAULT_N0,
    n_channels: int = 200_000,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of :func:`average_ber` from explicit ``H`` draws.

    Cross-check used by the test suite: draws ``n_channels`` Rayleigh MIMO
    matrices, evaluates the instantaneous BER kernel at each ``gamma_b`` and
    averages.  Agrees with the closed form to Monte-Carlo accuracy.
    """
    check_positive(ebar, "ebar")
    h = rayleigh_mimo_channel(mt, mr, n_channels, rng)
    frob = np.sum(np.abs(h) ** 2, axis=(1, 2))
    gamma_b = frob * ebar / (n0 * mt)
    return float(np.mean(instantaneous_ber(gamma_b, b)))
