"""Constellation-size optimization.

Every algorithm in the paper carries the step "SU nodes use the table of
``e_bar_b`` to determine constellation size ``b`` which minimizes"
the relevant energy.  These helpers perform that discrete optimization over
``b`` in 1..16 (the range swept in Section 6) for the three objectives used
by the experiments:

* minimize long-haul transmit energy at a fixed distance (underlay, and the
  direct-link budget of the overlay analysis);
* maximize link distance under an energy budget (overlay, Figure 6);
* minimize the peak PA energy (underlay noise-floor accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Tuple, Union

from repro.energy.model import EnergyModel
from repro.utils.units import Hertz, Joules, Meters
from repro.utils.validation import check_finite, check_positive_int

__all__ = [
    "DEFAULT_B_RANGE",
    "OptimizationResult",
    "minimize_mimo_tx_energy",
    "maximize_mimo_distance",
    "minimize_over_b",
]

#: The paper's constellation sweep: "constellation size b varies from 1 to 16".
DEFAULT_B_RANGE: Tuple[int, ...] = tuple(range(1, 17))


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a discrete search over constellation sizes."""

    b: int
    value: float

    def __post_init__(self) -> None:
        check_positive_int(self.b, "b")
        check_finite(self.value, "value")

    def __iter__(self) -> Iterator[float]:
        # allow  b, value = result  unpacking at call sites
        yield self.b
        yield self.value


def minimize_over_b(
    objective: Callable[[int], float],
    b_range: Iterable[int] = DEFAULT_B_RANGE,
    maximize: bool = False,
) -> OptimizationResult:
    """Evaluate ``objective(b)`` over ``b_range`` and return the best point.

    Candidate ``b`` values for which the objective raises ``ValueError`` are
    skipped (some (p, b) pairs are infeasible — e.g. a lax BER target makes
    the AWGN inversion of formula (1) non-positive for small b).
    """
    best: Optional[OptimizationResult] = None
    for b in b_range:
        try:
            value = float(objective(int(b)))
        except ValueError:
            continue
        if best is None or (value > best.value if maximize else value < best.value):
            best = OptimizationResult(b=int(b), value=value)
    if best is None:
        raise ValueError("no feasible constellation size in the given range")
    return best


def minimize_mimo_tx_energy(
    model: EnergyModel,
    p: float,
    mt: int,
    mr: int,
    distance: Meters,
    bandwidth: Hertz,
    b_range: Iterable[int] = DEFAULT_B_RANGE,
) -> OptimizationResult:
    """``min_b e^{MIMOt}(mt, mr)`` at fixed distance; returns (b, energy [J/bit])."""
    return minimize_over_b(
        lambda b: model.mimo_tx(p, b, mt, mr, distance, bandwidth).total,
        b_range,
    )


def maximize_mimo_distance(
    model: EnergyModel,
    energy_budget: Joules,
    p: float,
    mt: int,
    mr: int,
    bandwidth: Hertz,
    b_range: Iterable[int] = DEFAULT_B_RANGE,
    extra_circuit: Union[float, Callable[[int], float]] = 0.0,
) -> OptimizationResult:
    """``max_b D(b)`` under an energy budget; returns (b, distance [m]).

    ``extra_circuit`` is additional per-bit energy the budget must also
    cover — the overlay analysis uses it for the relay's reception energy
    ``e^{MIMOr}`` in step 3 (``E_S = e^{MIMOt}(m,1) + e^{MIMOr}``).  It may
    be a float or a callable ``b -> float`` (``e^{MIMOr}`` itself depends on
    the constellation size through the circuit term).
    """
    extra = extra_circuit if callable(extra_circuit) else (lambda _b: extra_circuit)
    return minimize_over_b(
        lambda b: model.max_mimo_distance(
            energy_budget, p, b, mt, mr, bandwidth, extra_circuit=extra(b)
        ),
        b_range,
        maximize=True,
    )
