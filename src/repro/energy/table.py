"""Precomputed ``e_bar_b`` lookup tables — the algorithms' "Preprocessing".

Algorithms 1 and 2 both begin with:

    *Preprocessing.  Calculate the value of e_bar_b(p, b, mt, mr) for a set
    of p, b, mt, and mr.  Load the table of e_bar_b in each SU node.*

:class:`EbarTable` is that artifact: a dense grid over (p, b, mt, mr) built
once (the expensive root-finding happens here) and shared by every SU node
as an O(1) lookup.  It exposes the same ``(p, b, mt, mr) -> e_bar_b``
callable signature as the exact solver so it can be plugged directly into
:class:`repro.energy.model.EnergyModel`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.energy.ebar import DEFAULT_N0, solve_ebar

__all__ = ["EbarTable", "DEFAULT_P_GRID", "DEFAULT_B_GRID", "DEFAULT_M_GRID"]

#: BER grid matching the paper's sweep "BER p_b varies from 0.1 to 0.0005".
DEFAULT_P_GRID: Tuple[float, ...] = (0.1, 0.05, 0.01, 0.005, 0.001, 0.0005)
#: Constellation sizes 1..16 bits/symbol (Section 6 sweeps).
DEFAULT_B_GRID: Tuple[int, ...] = tuple(range(1, 17))
#: Cooperative node counts 1..4 on each side (Section 6 sweeps).
DEFAULT_M_GRID: Tuple[int, ...] = (1, 2, 3, 4)


class EbarTable:
    """Dense ``e_bar_b`` table over a (p, b, mt, mr) grid.

    Grid points whose target BER exceeds the modulation's zero-energy
    ceiling ``a/2`` (where ``a`` is the Gray-QAM BER coefficient) are
    infeasible; they are stored as NaN and raise ``KeyError`` on lookup.
    """

    def __init__(
        self,
        p_values: Sequence[float] = DEFAULT_P_GRID,
        b_values: Sequence[int] = DEFAULT_B_GRID,
        mt_values: Sequence[int] = DEFAULT_M_GRID,
        mr_values: Sequence[int] = DEFAULT_M_GRID,
        n0: float = DEFAULT_N0,
    ):
        self.p_values = tuple(sorted(set(float(p) for p in p_values)))
        self.b_values = tuple(sorted(set(int(b) for b in b_values)))
        self.mt_values = tuple(sorted(set(int(m) for m in mt_values)))
        self.mr_values = tuple(sorted(set(int(m) for m in mr_values)))
        self.n0 = float(n0)
        if not (self.p_values and self.b_values and self.mt_values and self.mr_values):
            raise ValueError("all grid axes must be non-empty")
        self._data: Dict[Tuple[float, int, int, int], float] = {}
        self._build()

    def _build(self) -> None:
        for p in self.p_values:
            for b in self.b_values:
                for mt in self.mt_values:
                    for mr in self.mr_values:
                        try:
                            value = solve_ebar(p, b, mt, mr, n0=self.n0)
                        except ValueError:
                            value = float("nan")
                        self._data[(p, b, mt, mr)] = value

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, p: float, b: int, mt: int, mr: int) -> float:
        """Exact-grid lookup; ``p`` snaps to the nearest grid value.

        Snapping mirrors how a real node would quantize its BER target to
        the preloaded table resolution.
        """
        p_near = min(self.p_values, key=lambda g: abs(g - p))
        key = (p_near, int(b), int(mt), int(mr))
        if key[1:] != (int(b), int(mt), int(mr)) or key not in self._data:
            raise KeyError(f"(b={b}, mt={mt}, mr={mr}) not on the table grid")
        value = self._data[key]
        if np.isnan(value):
            raise KeyError(f"grid point p={p_near}, b={b} is infeasible")
        return value

    def __call__(self, p: float, b: int, mt: int, mr: int) -> float:
        """Callable alias of :meth:`lookup` (EnergyModel provider signature)."""
        return self.lookup(p, b, mt, mr)

    def lookup_interpolated(self, p: float, b: int, mt: int, mr: int) -> float:
        """Log-log interpolation in ``p`` between grid points.

        ``e_bar_b`` is near power-law in the target BER, so interpolating
        ``log e_bar`` against ``log p`` between bracketing grid values is
        accurate to a few percent on the paper's grid (exactness on grid
        points and monotonicity are asserted by the tests).  ``p`` outside
        the grid clamps to the nearest edge.
        """
        key_b = (int(b), int(mt), int(mr))
        finite = [
            g
            for g in self.p_values
            if not np.isnan(self._data[(g,) + key_b])
        ]
        if not finite:
            raise KeyError(f"no feasible grid entries for b={b}, mt={mt}, mr={mr}")
        p_clamped = min(max(p, finite[0]), finite[-1])
        log_p = np.log([g for g in finite])
        log_e = np.log([self._data[(g,) + key_b] for g in finite])
        return float(np.exp(np.interp(np.log(p_clamped), log_p, log_e)))

    def feasible_b(self, p: float, mt: int, mr: int) -> Tuple[int, ...]:
        """Constellation sizes with a finite table entry at this (p, mt, mr)."""
        p_near = min(self.p_values, key=lambda g: abs(g - p))
        return tuple(
            b
            for b in self.b_values
            if not np.isnan(self._data[(p_near, b, mt, mr)])
        )

    def min_ebar_b(self, p: float, mt: int, mr: int) -> Tuple[int, float]:
        """The algorithms' selection rule: ``b`` minimizing ``e_bar_b``.

        Returns ``(b, e_bar_b)``; raises ``KeyError`` if no b is feasible.
        """
        candidates = self.feasible_b(p, mt, mr)
        if not candidates:
            raise KeyError(f"no feasible b for p={p}, mt={mt}, mr={mr}")
        p_near = min(self.p_values, key=lambda g: abs(g - p))
        best = min(candidates, key=lambda b: self._data[(p_near, b, mt, mr)])
        return best, self._data[(p_near, best, mt, mr)]

    # ------------------------------------------------------------------ #
    # Serialization (nodes "load the table")                             #
    # ------------------------------------------------------------------ #

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Dense-array form suitable for ``np.savez`` / network distribution."""
        shape = (
            len(self.p_values),
            len(self.b_values),
            len(self.mt_values),
            len(self.mr_values),
        )
        grid = np.empty(shape)
        for i, p in enumerate(self.p_values):
            for j, b in enumerate(self.b_values):
                for k, mt in enumerate(self.mt_values):
                    for l, mr in enumerate(self.mr_values):
                        grid[i, j, k, l] = self._data[(p, b, mt, mr)]
        return {
            "p_values": np.array(self.p_values),
            "b_values": np.array(self.b_values),
            "mt_values": np.array(self.mt_values),
            "mr_values": np.array(self.mr_values),
            "ebar": grid,
            "n0": np.array(self.n0),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "EbarTable":
        """Rebuild a table from :meth:`to_arrays` output without re-solving."""
        table = cls.__new__(cls)
        table.p_values = tuple(float(p) for p in arrays["p_values"])
        table.b_values = tuple(int(b) for b in arrays["b_values"])
        table.mt_values = tuple(int(m) for m in arrays["mt_values"])
        table.mr_values = tuple(int(m) for m in arrays["mr_values"])
        table.n0 = float(arrays["n0"])
        grid = np.asarray(arrays["ebar"], dtype=float)
        table._data = {}
        for i, p in enumerate(table.p_values):
            for j, b in enumerate(table.b_values):
                for k, mt in enumerate(table.mt_values):
                    for l, mr in enumerate(table.mr_values):
                        table._data[(p, b, mt, mr)] = float(grid[i, j, k, l])
        return table
