"""Precomputed ``e_bar_b`` lookup tables — the algorithms' "Preprocessing".

Algorithms 1 and 2 both begin with:

    *Preprocessing.  Calculate the value of e_bar_b(p, b, mt, mr) for a set
    of p, b, mt, and mr.  Load the table of e_bar_b in each SU node.*

:class:`EbarTable` is that artifact: a dense grid over (p, b, mt, mr) built
once (the expensive root-finding happens here) and shared by every SU node
as an O(1) lookup.  It exposes the same ``(p, b, mt, mr) -> e_bar_b``
callable signature as the exact solver so it can be plugged directly into
:class:`repro.energy.model.EnergyModel`.

The grid is stored as one dense ``(p, b, mt, mr)`` ndarray filled by a
single :func:`repro.energy.ebar.solve_ebar_batch` call, and construction is
cached at two levels:

* a **process-level memo** shares the solved grid between all instances
  with identical grid/``n0``/convention specs in the same process;
* an **on-disk cache** (one ``.npy`` file in NumPy's native array format,
  keyed by a hash of the spec) makes repeat experiment/benchmark runs skip
  the solve entirely.  Warm loads go through ``np.load(..., mmap_mode="r")``:
  the grid is *memory-mapped read-only* rather than deserialized, so every
  process on the host — serving shards, pool workers, parallel experiment
  jobs — shares one page-cache-resident copy zero-copy instead of each
  materializing its own.  Writes stay atomic (serialize to a temp file,
  then ``os.replace``), so concurrent readers never observe a torn file.
  The cache directory defaults to ``$XDG_CACHE_HOME/repro-comimo`` (falling
  back to ``~/.cache/repro-comimo``) and can be overridden per instance
  (``cache_dir=...``) or via ``REPRO_CACHE_DIR``.  Set ``REPRO_NO_CACHE=1``
  (or pass ``use_cache=False``) to disable both levels — e.g. for hermetic
  CI runs that must not touch the home directory.
"""

from __future__ import annotations

import hashlib
import io
import os
import pathlib
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.energy.ebar import CONVENTIONS, DEFAULT_N0, solve_ebar_batch
from repro.utils.fsio import atomic_write_bytes
from repro.utils.units import WattsPerHz
from repro.utils.validation import check_positive

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "EbarTable",
    "DEFAULT_P_GRID",
    "DEFAULT_B_GRID",
    "DEFAULT_M_GRID",
    "default_cache_dir",
]

#: BER grid matching the paper's sweep "BER p_b varies from 0.1 to 0.0005".
DEFAULT_P_GRID: Tuple[float, ...] = (0.1, 0.05, 0.01, 0.005, 0.001, 0.0005)
#: Constellation sizes 1..16 bits/symbol (Section 6 sweeps).
DEFAULT_B_GRID: Tuple[int, ...] = tuple(range(1, 17))
#: Cooperative node counts 1..4 on each side (Section 6 sweeps).
DEFAULT_M_GRID: Tuple[int, ...] = (1, 2, 3, 4)

#: Bump when the on-disk layout or the solver semantics change — old cache
#: files then miss and are rebuilt rather than misread.  v2: one raw ``.npy``
#: grid per spec, loaded with ``mmap_mode="r"`` (zero-copy, page-cache
#: shared across processes) instead of the v1 ``np.savez`` archive.
_CACHE_FORMAT_VERSION = 2

#: Grid spec key: axes, n0 (hex), convention, cache format version.
_MemoKey = Tuple[object, ...]

#: Process-level memo: spec key -> solved (read-only) grid ndarray.
_GRID_MEMO: Dict[_MemoKey, np.ndarray] = {}


def default_cache_dir() -> pathlib.Path:
    """Resolve the on-disk cache directory for solved ``e_bar_b`` grids.

    Precedence: ``REPRO_CACHE_DIR`` env var, then
    ``$XDG_CACHE_HOME/repro-comimo``, then ``~/.cache/repro-comimo``.
    """
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return pathlib.Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-comimo"


def _cache_disabled_by_env() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "0") not in ("", "0")


class EbarTable:
    """Dense ``e_bar_b`` table over a (p, b, mt, mr) grid.

    Grid points whose target BER exceeds the modulation's zero-energy
    ceiling ``a/2`` (where ``a`` is the Gray-QAM BER coefficient) are
    infeasible; they are stored as NaN and raise ``KeyError`` on (scalar)
    lookup.

    Parameters
    ----------
    p_values, b_values, mt_values, mr_values:
        Grid axes (deduplicated and sorted ascending).
    n0:
        Noise PSD [W/Hz] the grid is solved at.
    convention:
        ``e_bar_b`` normalization convention, forwarded to the solver
        (see :func:`repro.energy.ebar.average_ber`).
    use_cache:
        When True (default), consult the process memo and the on-disk cache
        before solving, and populate both after a fresh solve.
    cache_dir:
        On-disk cache location override; defaults to
        :func:`default_cache_dir`.
    """

    def __init__(
        self,
        p_values: Sequence[float] = DEFAULT_P_GRID,
        b_values: Sequence[int] = DEFAULT_B_GRID,
        mt_values: Sequence[int] = DEFAULT_M_GRID,
        mr_values: Sequence[int] = DEFAULT_M_GRID,
        n0: WattsPerHz = DEFAULT_N0,
        convention: str = "paper",
        use_cache: bool = True,
        cache_dir: Union[str, pathlib.Path, None] = None,
    ) -> None:
        if convention not in CONVENTIONS:
            raise ValueError(
                f"convention must be one of {CONVENTIONS}, got {convention!r}"
            )
        p_values = tuple(sorted(set(float(p) for p in p_values)))
        b_values = tuple(sorted(set(int(b) for b in b_values)))
        mt_values = tuple(sorted(set(int(m) for m in mt_values)))
        mr_values = tuple(sorted(set(int(m) for m in mr_values)))
        if not (p_values and b_values and mt_values and mr_values):
            raise ValueError("all grid axes must be non-empty")
        self.n0 = check_positive(n0, "n0")
        self.convention = convention
        self._init_axes(p_values, b_values, mt_values, mr_values)

        caching = use_cache and not _cache_disabled_by_env()
        cache_path = None
        grid = _GRID_MEMO.get(self._memo_key()) if caching else None
        if grid is None and caching:
            cache_path = self._cache_path(cache_dir)
            grid = self._load_cached_grid(cache_path)
        freshly_solved = grid is None
        if freshly_solved:
            grid = self._build()
        self._grid = grid
        if caching:
            _GRID_MEMO.setdefault(self._memo_key(), grid)
            if freshly_solved:
                self._save_cached_grid(cache_path or self._cache_path(cache_dir), grid)

    # ------------------------------------------------------------------ #
    # Construction internals                                             #
    # ------------------------------------------------------------------ #

    def _init_axes(
        self,
        p_values: Tuple[float, ...],
        b_values: Tuple[int, ...],
        mt_values: Tuple[int, ...],
        mr_values: Tuple[int, ...],
    ) -> None:
        self.p_values = p_values
        self.b_values = b_values
        self.mt_values = mt_values
        self.mr_values = mr_values
        self._p_array = np.array(p_values)
        self._b_index = {b: j for j, b in enumerate(b_values)}
        self._mt_index = {m: j for j, m in enumerate(mt_values)}
        self._mr_index = {m: j for j, m in enumerate(mr_values)}

    def _build(self) -> np.ndarray:
        """Solve the whole grid with one vectorized batch call."""
        p_g, b_g, mt_g, mr_g = np.meshgrid(
            self._p_array,
            np.array(self.b_values),
            np.array(self.mt_values),
            np.array(self.mr_values),
            indexing="ij",
        )
        grid = solve_ebar_batch(
            p_g, b_g, mt_g, mr_g, n0=self.n0, convention=self.convention
        )
        grid.setflags(write=False)
        return grid

    def _memo_key(self) -> _MemoKey:
        return (
            self.p_values,
            self.b_values,
            self.mt_values,
            self.mr_values,
            self.n0.hex(),
            self.convention,
            _CACHE_FORMAT_VERSION,
        )

    def _cache_path(self, cache_dir: Union[str, pathlib.Path, None]) -> pathlib.Path:
        spec = repr(self._memo_key()).encode()
        digest = hashlib.sha256(spec).hexdigest()[:20]
        base = pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
        return base / f"ebar-v{_CACHE_FORMAT_VERSION}-{digest}.npy"

    def _load_cached_grid(self, path: pathlib.Path) -> Optional[np.ndarray]:
        """Memory-map a cached grid read-only (zero-copy, shared pages).

        Every process that loads the same cache file maps the same
        page-cache copy: shards and pool workers share one warm grid
        instead of each deserializing their own.  The file was written
        atomically, so any successfully opened file is complete; anything
        malformed (truncated tmp leftovers, foreign files, stale shapes)
        is treated as a miss and re-solved.
        """
        try:
            grid = np.load(path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError):
            return None
        if not isinstance(grid, np.ndarray) or grid.dtype != np.float64:
            return None
        if grid.shape != (
            len(self.p_values),
            len(self.b_values),
            len(self.mt_values),
            len(self.mr_values),
        ):
            return None
        return grid

    def _save_cached_grid(self, path: pathlib.Path, grid: np.ndarray) -> None:
        """Serialize the solved grid and publish it atomically.

        The ``.npy`` bytes are built in memory (the default grid is only a
        few KiB) and handed to :func:`atomic_write_bytes`, so concurrent
        readers either miss or map a complete file — never a torn one.  An
        unwritable cache directory is a silent no-op; the in-memory table
        still works.
        """
        buffer = io.BytesIO()
        np.lib.format.write_array(
            buffer, np.ascontiguousarray(grid), allow_pickle=False
        )
        atomic_write_bytes(path, buffer.getvalue())

    @classmethod
    def clear_memory_cache(cls) -> None:
        """Drop the process-level grid memo (test/benchmark isolation)."""
        _GRID_MEMO.clear()

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self._grid.size)

    @staticmethod
    def _grid_index(index_map: Dict[int, int], value: float, label: str) -> int:
        """Membership check against one grid axis; KeyError when off-grid."""
        if float(value) != int(value) or int(value) not in index_map:
            raise KeyError(f"{label}={value} not on the table grid")
        return index_map[int(value)]

    def _axis_index(self, b: int, mt: int, mr: int) -> Tuple[int, int, int]:
        """Map exact (b, mt, mr) to grid indices; KeyError when off-grid."""
        return (
            self._grid_index(self._b_index, b, "b"),
            self._grid_index(self._mt_index, mt, "mt"),
            self._grid_index(self._mr_index, mr, "mr"),
        )

    def _nearest_p_index(self, p: "ArrayLike") -> np.ndarray:
        """Indices of the nearest grid BER(s); ties snap to the smaller p."""
        return np.argmin(
            np.abs(self._p_array - np.asarray(p, dtype=float)[..., None]), axis=-1
        )

    def lookup(
        self, p: "ArrayLike", b: Union[int, np.ndarray], mt: int, mr: int
    ) -> Union[float, np.ndarray]:
        """Exact-grid lookup; ``p`` snaps to the nearest grid value.

        Snapping mirrors how a real node would quantize its BER target to
        the preloaded table resolution.  ``p`` and ``b`` may be arrays (they
        broadcast): the result is then an ndarray in which infeasible grid
        points appear as NaN instead of raising.  Scalar lookups keep the
        strict behaviour — ``KeyError`` for off-grid ``(b, mt, mr)`` *and*
        for infeasible (NaN) entries.
        """
        if np.ndim(p) == 0 and np.ndim(b) == 0:
            j, k, l = self._axis_index(b, mt, mr)
            i = int(self._nearest_p_index(float(p)))
            value = float(self._grid[i, j, k, l])
            if np.isnan(value):
                raise KeyError(
                    f"grid point p={self.p_values[i]}, b={b} is infeasible"
                )
            return value
        p_a, b_a = np.broadcast_arrays(np.asarray(p, float), np.asarray(b))
        k = self._grid_index(self._mt_index, mt, "mt")
        l = self._grid_index(self._mr_index, mr, "mr")
        flat_b = b_a.reshape(-1)
        rows = np.array(
            [self._grid_index(self._b_index, b_val, "b") for b_val in flat_b]
        )
        i = self._nearest_p_index(p_a).reshape(-1)
        return self._grid[i, rows, k, l].reshape(p_a.shape)

    def __call__(self, p: float, b: int, mt: int, mr: int) -> float:
        """Callable alias of :meth:`lookup` (EnergyModel provider signature)."""
        return self.lookup(p, b, mt, mr)

    def lookup_interpolated(
        self, p: "ArrayLike", b: int, mt: int, mr: int
    ) -> Union[float, np.ndarray]:
        """Log-log interpolation in ``p`` between grid points.

        ``e_bar_b`` is near power-law in the target BER, so interpolating
        ``log e_bar`` against ``log p`` between bracketing grid values is
        accurate to a few percent on the paper's grid (exactness on grid
        points and monotonicity are asserted by the tests).  ``p`` outside
        the grid clamps to the nearest edge; an array ``p`` returns an
        ndarray.
        """
        j, k, l = self._axis_index(b, mt, mr)
        column = self._grid[:, j, k, l]
        finite = ~np.isnan(column)
        if not finite.any():
            raise KeyError(f"no feasible grid entries for b={b}, mt={mt}, mr={mr}")
        p_grid = self._p_array[finite]
        e_grid = column[finite]
        p_clamped = np.minimum(np.maximum(p, p_grid[0]), p_grid[-1])
        out = np.exp(np.interp(np.log(p_clamped), np.log(p_grid), np.log(e_grid)))
        return float(out) if np.ndim(p) == 0 else out

    def feasible_b(self, p: float, mt: int, mr: int) -> Tuple[int, ...]:
        """Constellation sizes with a finite table entry at this (p, mt, mr)."""
        k = self._grid_index(self._mt_index, mt, "mt")
        l = self._grid_index(self._mr_index, mr, "mr")
        i = int(self._nearest_p_index(float(p)))
        finite = ~np.isnan(self._grid[i, :, k, l])
        return tuple(b for b, ok in zip(self.b_values, finite) if ok)

    def min_ebar_b(
        self, p: "ArrayLike", mt: int, mr: int
    ) -> Tuple[Union[int, np.ndarray], Union[float, np.ndarray]]:
        """The algorithms' selection rule: ``b`` minimizing ``e_bar_b``.

        Returns ``(b, e_bar_b)``; raises ``KeyError`` if no b is feasible.
        With an array ``p``, returns ``(b_array, ebar_array)`` resolved per
        entry.
        """
        k = self._grid_index(self._mt_index, mt, "mt")
        l = self._grid_index(self._mr_index, mr, "mr")
        if np.ndim(p) == 0:
            i = int(self._nearest_p_index(float(p)))
            column = self._grid[i, :, k, l]
            if np.isnan(column).all():
                raise KeyError(f"no feasible b for p={p}, mt={mt}, mr={mr}")
            j = int(np.nanargmin(column))
            return self.b_values[j], float(column[j])
        i = self._nearest_p_index(p)
        block = self._grid[i, :, k, l]  # (..., n_b)
        if np.isnan(block).all(axis=-1).any():
            raise KeyError(f"no feasible b for p={p}, mt={mt}, mr={mr}")
        j = np.nanargmin(block, axis=-1)
        values = np.take_along_axis(block, j[..., None], axis=-1)[..., 0]
        return np.array(self.b_values)[j], values

    # ------------------------------------------------------------------ #
    # Serialization (nodes "load the table")                             #
    # ------------------------------------------------------------------ #

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Dense-array form suitable for ``np.savez`` / network distribution."""
        return {
            "p_values": np.array(self.p_values),
            "b_values": np.array(self.b_values),
            "mt_values": np.array(self.mt_values),
            "mr_values": np.array(self.mr_values),
            "ebar": np.array(self._grid),
            "n0": np.array(self.n0),
            "convention": np.array(self.convention),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "EbarTable":
        """Rebuild a table from :meth:`to_arrays` output without re-solving."""
        table = cls.__new__(cls)
        table.n0 = float(arrays["n0"])
        table.convention = (
            str(arrays["convention"]) if "convention" in arrays else "paper"
        )
        table._init_axes(
            tuple(float(p) for p in arrays["p_values"]),
            tuple(int(b) for b in arrays["b_values"]),
            tuple(int(m) for m in arrays["mt_values"]),
            tuple(int(m) for m in arrays["mr_values"]),
        )
        grid = np.array(arrays["ebar"], dtype=float)
        grid.setflags(write=False)
        table._grid = grid
        return table
