"""The four per-bit energy formulas of Section 2.3.

:class:`EnergyModel` evaluates, for a given constant set
(:class:`repro.constants.SystemConstants`) and an ``e_bar_b`` provider:

* formula (1) — ``e^{Lt}``: local/intra-cluster transmission
  (``e_PA^{Lt} + e_C^{Lt}``, kappa-law path loss, AWGN, M-QAM);
* formula (2) — ``e^{Lr}``: local reception (circuit only);
* formula (3) — ``e^{MIMOt}(mt, mr)``: long-haul cooperative transmission
  per participating node (``e_PA^{MIMOt} + e_C^{MIMOt}``, square-law path
  loss, Rayleigh STBC link);
* formula (4) — ``e^{MIMOr}``: long-haul reception (circuit only).

Each method also exposes its PA/circuit split through
:class:`EnergyBreakdown`, because the underlay analysis (Section 4) needs
the PA component alone — the interference a primary receiver sees comes
from radiated (PA) energy, not from circuit consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.constants import PAPER_CONSTANTS, SystemConstants
from repro.utils.units import Hertz, Joules, JoulesArray, Meters, MetersArray
from repro.energy.ebar import solve_ebar
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = ["EnergyModel", "EnergyBreakdown", "DEFAULT_PACKET_BITS"]

#: Default information size ``n`` for the synchronization-transient term
#: ``P_syn T_tr / n`` (per-bit amortization of the 5 us synthesizer settle).
DEFAULT_PACKET_BITS = 10_000


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-bit energy split into power-amplifier and circuit components [J]."""

    pa: Joules
    circuit: Joules

    def __post_init__(self) -> None:
        check_non_negative(self.pa, "pa")
        check_non_negative(self.circuit, "circuit")

    @property
    def total(self) -> Joules:
        """``pa + circuit`` — the quantity the formulas denote ``e^{...}``."""
        return self.pa + self.circuit


class EnergyModel:
    """Evaluator for formulas (1)-(4) with pluggable ``e_bar_b`` provider.

    Parameters
    ----------
    constants:
        Radio constant set; defaults to the paper's Section 2.3 values.
    ebar_provider:
        Callable ``(p, b, mt, mr) -> e_bar_b`` [J].  Defaults to the exact
        solver :func:`repro.energy.ebar.solve_ebar`; pass an
        :class:`repro.energy.table.EbarTable` lookup to emulate the
        algorithms' preloaded-table behaviour (identical numbers on grid
        points, O(1) per query).
    packet_bits:
        Information size ``n`` amortizing the synchronization transient.
    ebar_convention:
        Normalization convention forwarded to the default solver; ignored
        when an explicit ``ebar_provider`` is given.  See
        :func:`repro.energy.ebar.average_ber`.
    memoize_ebar:
        When True (default), successful ``e_bar_b`` queries are memoized per
        ``(p, b, mt, mr)``: the experiment sweeps re-ask for the same points
        thousands of times (every distance cell re-prices the same link),
        and the providers are pure functions of their arguments, so caching
        is exact.  Pass False for a stateful custom provider.
    """

    def __init__(
        self,
        constants: SystemConstants = PAPER_CONSTANTS,
        ebar_provider: Optional[Callable[[float, int, int, int], float]] = None,
        packet_bits: int = DEFAULT_PACKET_BITS,
        ebar_convention: str = "paper",
        memoize_ebar: bool = True,
    ) -> None:
        self.constants = constants
        self.ebar_convention = ebar_convention
        self._ebar = ebar_provider or (
            lambda p, b, mt, mr: solve_ebar(
                p, b, mt, mr, n0=constants.n0_w_hz, convention=ebar_convention
            )
        )
        self.packet_bits = check_positive_int(packet_bits, "packet_bits")
        self._ebar_cache: Optional[Dict[Tuple[float, int, int, int], float]] = (
            {} if memoize_ebar else None
        )

    # ------------------------------------------------------------------ #
    # e_bar_b passthrough                                                #
    # ------------------------------------------------------------------ #

    def ebar(self, p: float, b: int, mt: int, mr: int) -> Joules:
        """Required received energy per bit over the ``mt x mr`` link [J]."""
        cache = self._ebar_cache
        if cache is None:
            return self._ebar(p, b, mt, mr)
        key = (p, b, mt, mr)
        try:
            return cache[key]
        except KeyError:
            value = self._ebar(p, b, mt, mr)
            cache[key] = value
            return value

    # ------------------------------------------------------------------ #
    # Formula (1): local transmission                                    #
    # ------------------------------------------------------------------ #

    def local_tx(
        self,
        p: float,
        b: int,
        d: Meters,
        bandwidth: Hertz,
    ) -> EnergyBreakdown:
        """``e^{Lt}`` — per-bit energy to transmit over a ``d``-meter local hop.

        ``e_PA^{Lt} = (4/3)(1+alpha) (2^b - 1)/b * ln(4 (1 - 2^{-b/2})/(b p))
        * G_d * N_f * sigma^2`` and ``e_C^{Lt} = P_ct/(bB) + P_syn T_tr / n``.
        """
        p = check_probability(p, "p")
        b = check_positive_int(b, "b")
        d = check_positive(d, "d")
        bandwidth = check_positive(bandwidth, "bandwidth")
        c = self.constants
        alpha = c.peak_to_average_alpha(b)
        log_arg = 4.0 * (1.0 - 2.0 ** (-b / 2.0)) / (b * p)
        if log_arg <= 1.0:
            raise ValueError(
                f"target BER p={p} too lax for b={b}: the AWGN inversion "
                "ln(4(1-2^{-b/2})/(bp)) is non-positive"
            )
        pa = (
            (4.0 / 3.0)
            * (1.0 + alpha)
            * (2.0**b - 1.0)
            / b
            * np.log(log_arg)
            * c.local_gain(d)
            * c.noise_figure_linear
            * c.sigma2_w_hz
        )
        circuit = c.p_ct_w / (b * bandwidth) + c.p_syn_w * c.t_tr_s / self.packet_bits
        return EnergyBreakdown(pa=float(pa), circuit=float(circuit))

    # ------------------------------------------------------------------ #
    # Formula (2): local reception                                       #
    # ------------------------------------------------------------------ #

    def local_rx(self, b: int, bandwidth: Hertz) -> EnergyBreakdown:
        """``e^{Lr} = P_cr/(bB) + P_syn T_tr / n`` — circuit-only reception."""
        b = check_positive_int(b, "b")
        bandwidth = check_positive(bandwidth, "bandwidth")
        c = self.constants
        circuit = c.p_cr_w / (b * bandwidth) + c.p_syn_w * c.t_tr_s / self.packet_bits
        return EnergyBreakdown(pa=0.0, circuit=float(circuit))

    # ------------------------------------------------------------------ #
    # Formula (3): long-haul cooperative transmission                    #
    # ------------------------------------------------------------------ #

    def mimo_tx(
        self,
        p: float,
        b: int,
        mt: int,
        mr: int,
        distance: Meters,
        bandwidth: Hertz,
    ) -> EnergyBreakdown:
        """``e^{MIMOt}(mt, mr)`` — per *participating node* long-haul tx energy.

        ``e_PA^{MIMOt} = (1/mt)(1+alpha) e_bar_b (4 pi D)^2/(Gt Gr lambda^2)
        M_l N_f`` and ``e_C^{MIMOt} = (P_ct + P_syn)/(bB)``.
        """
        p = check_probability(p, "p")
        b = check_positive_int(b, "b")
        mt = check_positive_int(mt, "mt")
        mr = check_positive_int(mr, "mr")
        distance = check_positive(distance, "distance")
        bandwidth = check_positive(bandwidth, "bandwidth")
        c = self.constants
        alpha = c.peak_to_average_alpha(b)
        ebar = self.ebar(p, b, mt, mr)
        pa = (1.0 / mt) * (1.0 + alpha) * ebar * c.longhaul_gain(distance)
        circuit = (c.p_ct_w + c.p_syn_w) / (b * bandwidth)
        return EnergyBreakdown(pa=float(pa), circuit=float(circuit))

    def mimo_tx_pa_batch(
        self,
        p: float,
        b: int,
        mt: int,
        mr: int,
        distances: MetersArray,
        bandwidth: Hertz,
    ) -> JoulesArray:
        """PA component of :meth:`mimo_tx` over an array of link distances.

        Elementwise identical to ``mimo_tx(...).pa`` at each distance (the
        same operation order on the same floats), which lets the experiment
        sweeps evaluate a whole distance axis per constellation size in one
        shot.  The circuit component is distance-independent —
        ``mimo_tx(p, b, mt, mr, d, bandwidth).circuit`` at any ``d``.
        """
        p = check_probability(p, "p")
        b = check_positive_int(b, "b")
        mt = check_positive_int(mt, "mt")
        mr = check_positive_int(mr, "mr")
        bandwidth = check_positive(bandwidth, "bandwidth")
        d = np.asarray(distances, dtype=float)
        if np.any(d <= 0.0):
            raise ValueError("distances must be strictly positive")
        c = self.constants
        alpha = c.peak_to_average_alpha(b)
        ebar = self.ebar(p, b, mt, mr)
        return (1.0 / mt) * (1.0 + alpha) * ebar * c.longhaul_gain(d)

    # ------------------------------------------------------------------ #
    # Formula (4): long-haul reception                                   #
    # ------------------------------------------------------------------ #

    def mimo_rx(self, b: int, bandwidth: Hertz) -> EnergyBreakdown:
        """``e^{MIMOr} = (P_cr + P_syn)/(bB)`` — circuit-only reception."""
        b = check_positive_int(b, "b")
        bandwidth = check_positive(bandwidth, "bandwidth")
        c = self.constants
        circuit = (c.p_cr_w + c.p_syn_w) / (b * bandwidth)
        return EnergyBreakdown(pa=0.0, circuit=float(circuit))

    # ------------------------------------------------------------------ #
    # Distance inversion (overlay analysis, Section 3)                   #
    # ------------------------------------------------------------------ #

    def max_mimo_distance(
        self,
        energy_budget: Joules,
        p: float,
        b: int,
        mt: int,
        mr: int,
        bandwidth: Hertz,
        extra_circuit: Joules = 0.0,
    ) -> Meters:
        """Largest link length such that ``e^{MIMOt} + extra_circuit <= budget``.

        The long-haul PA term is exactly quadratic in ``D``
        (``longhaul_gain(D) = C D^2``), so the inversion is closed-form::

            D = sqrt( (budget - e_C - extra) * mt / ((1+alpha) e_bar_b C) )

        Returns 0.0 when the budget cannot even cover the circuit energy
        (the relay is infeasible at any distance).
        """
        check_positive(energy_budget, "energy_budget")
        p = check_probability(p, "p")
        b = check_positive_int(b, "b")
        mt = check_positive_int(mt, "mt")
        mr = check_positive_int(mr, "mr")
        bandwidth = check_positive(bandwidth, "bandwidth")
        if extra_circuit < 0.0:
            raise ValueError("extra_circuit must be non-negative")
        c = self.constants
        alpha = c.peak_to_average_alpha(b)
        circuit = (c.p_ct_w + c.p_syn_w) / (b * bandwidth)
        headroom = energy_budget - circuit - extra_circuit
        if headroom <= 0.0:
            return 0.0
        ebar = self.ebar(p, b, mt, mr)
        unit_gain = c.longhaul_gain(1.0)  # C * 1^2
        d_squared = headroom * mt / ((1.0 + alpha) * ebar * unit_gain)
        return float(np.sqrt(d_squared))
