"""The paper's energy model (Section 2.3, formulas (1)-(6)).

Layout:

* :mod:`repro.energy.ebar` — the required received energy per bit
  ``e_bar_b(p, b, mt, mr)`` over the Rayleigh-faded STBC MIMO link, solved
  from the average-BER relations (5)/(6);
* :mod:`repro.energy.model` — :class:`EnergyModel`, the four per-bit energy
  formulas (local tx/rx, long-haul MIMO tx/rx) with PA/circuit splits;
* :mod:`repro.energy.optimize` — constellation-size (``b``) optimization,
  used by every algorithm's "determine constellation size b which minimizes
  e_bar_b" step;
* :mod:`repro.energy.table` — the precomputed ``e_bar_b`` lookup table that
  Algorithms 1 and 2 load into each SU node ("Preprocessing"), built by one
  vectorized :func:`repro.energy.ebar.solve_ebar_batch` call and cached
  in-process and on disk (see ``default_cache_dir``).
"""

from repro.energy.ebar import (
    average_ber,
    average_ber_monte_carlo,
    solve_ebar,
    solve_ebar_batch,
)
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.optimize import (
    minimize_mimo_tx_energy,
    maximize_mimo_distance,
)
from repro.energy.table import EbarTable, default_cache_dir

__all__ = [
    "average_ber",
    "average_ber_monte_carlo",
    "solve_ebar",
    "solve_ebar_batch",
    "EnergyModel",
    "EnergyBreakdown",
    "minimize_mimo_tx_energy",
    "maximize_mimo_distance",
    "EbarTable",
    "default_cache_dir",
]
