"""The cluster-level network ``G_MIMO`` with its routing backbone.

From Section 2.1: vertices of ``G_MIMO`` are the clusters (virtual MIMO
nodes); an edge ``(A, B)`` exists iff a cooperative MIMO link can be defined
between them — here, iff the largest member-to-member distance is within the
long-haul range ``D_max``.  Head nodes form a spanning tree used as the
routing backbone; clusters and the backbone are reconfigurable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.network.cluster import Cluster
from repro.network.clustering import d_cluster
from repro.network.graph import Graph
from repro.network.node import SUNode
from repro.utils.validation import (
    check_non_negative,
    check_non_negative_int,
    check_positive_int,
)

__all__ = ["LinkKind", "CooperativeLink", "CoMIMONet"]


class LinkKind(enum.Enum):
    """Cooperative link classification by antenna counts (Section 2.1)."""

    SISO = "SISO"
    MISO = "MISO"
    SIMO = "SIMO"
    MIMO = "MIMO"

    @classmethod
    def classify(cls, mt: int, mr: int) -> "LinkKind":
        if mt < 1 or mr < 1:
            raise ValueError("mt and mr must be >= 1")
        if mt == 1 and mr == 1:
            return cls.SISO
        if mt > 1 and mr == 1:
            return cls.MISO
        if mt == 1:
            return cls.SIMO
        return cls.MIMO


@dataclass(frozen=True)
class CooperativeLink:
    """A ``D - mt x mr`` cooperative link between two clusters."""

    tx_cluster_id: int
    rx_cluster_id: int
    mt: int
    mr: int
    length_m: float

    def __post_init__(self) -> None:
        check_non_negative_int(self.tx_cluster_id, "tx_cluster_id")
        check_non_negative_int(self.rx_cluster_id, "rx_cluster_id")
        check_positive_int(self.mt, "mt")
        check_positive_int(self.mr, "mr")
        check_non_negative(self.length_m, "length_m")

    @property
    def kind(self) -> LinkKind:
        return LinkKind.classify(self.mt, self.mr)


class CoMIMONet:
    """A cooperative MIMO network over a set of SU nodes.

    Parameters
    ----------
    nodes:
        The SU population.
    cluster_diameter:
        ``d`` — maximum intra-cluster pairwise distance (``d <= r``).
    longhaul_range:
        ``D_max`` — maximum cooperative link length between clusters.
    max_cluster_size:
        Optional cap on nodes per cluster (paper sweeps 1..4 cooperators).

    Building the network performs d-clustering, constructs the cluster
    graph, and grows the routing backbone (a spanning tree over heads).
    :meth:`reconfigure` repeats head election and backbone construction —
    the paper's "the clusters and the routing backbone are reconfigurable".
    """

    def __init__(
        self,
        nodes: Sequence[SUNode],
        cluster_diameter: float,
        longhaul_range: float,
        max_cluster_size: Optional[int] = None,
        backbone: str = "mst",
    ) -> None:
        if not nodes:
            raise ValueError("CoMIMONet needs at least one node")
        if cluster_diameter <= 0.0 or longhaul_range <= 0.0:
            raise ValueError("cluster_diameter and longhaul_range must be positive")
        if backbone not in ("mst", "bfs"):
            raise ValueError("backbone must be 'mst' or 'bfs'")
        if max_cluster_size is not None:
            check_positive_int(max_cluster_size, "max_cluster_size")
        self.nodes: List[SUNode] = list(nodes)
        self.cluster_diameter = float(cluster_diameter)
        self.longhaul_range = float(longhaul_range)
        self.max_cluster_size = max_cluster_size
        self.backbone_kind = backbone

        positions = np.stack([n.position for n in self.nodes])
        assignments = d_cluster(positions, cluster_diameter, max_cluster_size)
        self.clusters: List[Cluster] = [
            Cluster(cid, [self.nodes[i] for i in members])
            for cid, members in enumerate(assignments)
        ]
        self._cluster_by_id: Dict[int, Cluster] = {c.cluster_id: c for c in self.clusters}
        self.cluster_graph = self._build_cluster_graph()
        self.backbone = self._build_backbone()

    # ------------------------------------------------------------------ #
    # Construction helpers                                               #
    # ------------------------------------------------------------------ #

    def _build_cluster_graph(self) -> Graph:
        graph = Graph()
        for c in self.clusters:
            graph.add_vertex(c.cluster_id)
        for i, a in enumerate(self.clusters):
            for b in self.clusters[i + 1 :]:
                length = a.distance_to(b)
                if length <= self.longhaul_range:
                    graph.add_edge(a.cluster_id, b.cluster_id, length)
        return graph

    def _build_backbone(self) -> Graph:
        """Spanning tree over the cluster graph (per component).

        ``mst`` minimizes total link length (energy-motivated); ``bfs``
        minimizes hop count from the densest cluster.
        """
        backbone = Graph()
        for c in self.clusters:
            backbone.add_vertex(c.cluster_id)
        for component in self.cluster_graph.connected_components():
            if len(component) == 1:
                continue
            sub = Graph()
            for v in component:
                sub.add_vertex(v)
            for u, v, w in self.cluster_graph.edges():
                if u in component and v in component:
                    sub.add_edge(u, v, w)
            if self.backbone_kind == "mst":
                tree = sub.minimum_spanning_tree()
            else:
                root = max(component, key=lambda cid: self._cluster_by_id[cid].size)
                tree = sub.bfs_tree(root)
            for u, v, w in tree.edges():
                backbone.add_edge(u, v, w)
        return backbone

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster(self, cluster_id: int) -> Cluster:
        """The cluster with the given id (KeyError if dropped/unknown)."""
        return self._cluster_by_id[cluster_id]

    def cluster_of_node(self, node_id: int) -> Cluster:
        """The cluster containing the given elementary node."""
        for c in self.clusters:
            if any(n.node_id == node_id for n in c.nodes):
                return c
        raise KeyError(f"node {node_id} not in any cluster")

    def link_between(self, tx_cluster_id: int, rx_cluster_id: int) -> CooperativeLink:
        """The cooperative link descriptor for an existing cluster-graph edge."""
        if not self.cluster_graph.has_edge(tx_cluster_id, rx_cluster_id):
            raise KeyError(
                f"no cooperative link between clusters "
                f"{tx_cluster_id} and {rx_cluster_id}"
            )
        tx = self._cluster_by_id[tx_cluster_id]
        rx = self._cluster_by_id[rx_cluster_id]
        return CooperativeLink(
            tx_cluster_id=tx_cluster_id,
            rx_cluster_id=rx_cluster_id,
            mt=len(tx.alive_nodes),
            mr=len(rx.alive_nodes),
            length_m=self.cluster_graph.weight(tx_cluster_id, rx_cluster_id),
        )

    def route(self, source_cluster_id: int, dest_cluster_id: int) -> List[CooperativeLink]:
        """Backbone route between two clusters as a list of hop links.

        Raises ``ValueError`` when the clusters are in different components.
        """
        path = self.backbone.shortest_weighted_path(source_cluster_id, dest_cluster_id)
        if path is None:
            raise ValueError(
                f"clusters {source_cluster_id} and {dest_cluster_id} are disconnected"
            )
        return [self.link_between(u, v) for u, v in zip(path[:-1], path[1:])]

    # ------------------------------------------------------------------ #
    # Reconfiguration                                                    #
    # ------------------------------------------------------------------ #

    def reconfigure(self) -> None:
        """Re-elect heads by battery level and rebuild the backbone.

        Dead clusters (all members exhausted) are dropped from the cluster
        graph so routes steer around them.
        """
        survivors = []
        for c in self.clusters:
            if c.is_alive:
                c.elect_head()
                survivors.append(c)
        self.clusters = survivors
        self._cluster_by_id = {c.cluster_id: c for c in self.clusters}
        self.cluster_graph = self._build_cluster_graph()
        self.backbone = self._build_backbone()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoMIMONet(nodes={len(self.nodes)}, clusters={self.n_clusters}, "
            f"d={self.cluster_diameter}, D_max={self.longhaul_range})"
        )
