"""Clusters as virtual MIMO nodes.

Each cluster elects a *head* node (Section 2.1): the head retains member
state (IDs, battery levels), controls and synchronizes cooperative
transmission/reception, and participates in the routing backbone.  Election
picks the member with the most remaining battery — the criterion implied by
the paper's reconfigurability discussion (heads drain faster because they
coordinate, so rotation by battery equalizes lifetime).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry.points import pairwise_distances
from repro.network.node import SUNode
from repro.utils.validation import check_non_negative_int

__all__ = ["Cluster"]


class Cluster:
    """A d-cluster of SU nodes acting as one virtual MIMO node.

    Parameters
    ----------
    cluster_id:
        Identifier, unique within a CoMIMONet.
    nodes:
        Member nodes (at least one).  The initial head is elected on
        construction.
    """

    def __init__(self, cluster_id: int, nodes: Sequence[SUNode]) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in cluster")
        self.cluster_id = check_non_negative_int(cluster_id, "cluster_id")
        self.nodes: List[SUNode] = list(nodes)
        self._head_index = 0
        self.elect_head()

    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of elementary nodes (the cluster's antenna count)."""
        return len(self.nodes)

    @property
    def head(self) -> SUNode:
        """The current head node."""
        return self.nodes[self._head_index]

    @property
    def members(self) -> List[SUNode]:
        """All non-head elementary nodes."""
        return [n for i, n in enumerate(self.nodes) if i != self._head_index]

    @property
    def alive_nodes(self) -> List[SUNode]:
        """Members whose batteries are not exhausted."""
        return [n for n in self.nodes if n.alive]

    @property
    def is_alive(self) -> bool:
        """A cluster functions while at least one member is alive."""
        return any(n.alive for n in self.nodes)

    def positions(self) -> np.ndarray:
        """``(size, 2)`` stacked member coordinates."""
        return np.stack([n.position for n in self.nodes])

    @property
    def centroid(self) -> np.ndarray:
        """Geometric center of the members."""
        return self.positions().mean(axis=0)

    @property
    def diameter(self) -> float:
        """Largest intra-cluster pairwise distance (0 for singletons)."""
        if self.size < 2:
            return 0.0
        return float(pairwise_distances(self.positions()).max())

    # ------------------------------------------------------------------ #

    def elect_head(self) -> SUNode:
        """(Re-)elect the head: alive node with the most remaining energy.

        Ties break on the lower node id for determinism.  Raises
        ``RuntimeError`` when no member is alive (the CoMIMONet should then
        reconfigure around the dead cluster).
        """
        alive = [(i, n) for i, n in enumerate(self.nodes) if n.alive]
        if not alive:
            raise RuntimeError(f"cluster {self.cluster_id} has no alive nodes")
        self._head_index = max(alive, key=lambda t: (t[1].remaining_j, -t[1].node_id))[0]
        return self.head

    def distance_to(self, other: "Cluster") -> float:
        """Largest member-to-member distance — the paper's cooperative link
        length ``D`` ("the largest distance between a node of A and a node
        of B").  Conservative: the energy model is evaluated at the worst
        pair."""
        diff = self.positions()[:, None, :] - other.positions()[None, :, :]
        return float(np.linalg.norm(diff, axis=-1).max())

    def min_distance_to(self, other: "Cluster") -> float:
        """Smallest member-to-member distance (used by interference checks)."""
        diff = self.positions()[:, None, :] - other.positions()[None, :, :]
        return float(np.linalg.norm(diff, axis=-1).min())

    def total_consumed_j(self) -> float:
        """Sum of member energy consumption [J]."""
        return sum(n.consumed_j for n in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(id={self.cluster_id}, size={self.size}, "
            f"head={self.head.node_id}, diameter={self.diameter:.2f} m)"
        )
