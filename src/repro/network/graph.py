"""A small undirected graph with the algorithms CoMIMONet needs.

Implemented from scratch (adjacency dictionaries + binary heap) rather than
wrapping networkx, so the library has no graph dependency; the test suite
cross-validates every algorithm against networkx where it is available.

Supported operations: edge/vertex insertion, neighbors, connected
components, unweighted BFS shortest paths, Dijkstra, Prim minimum spanning
tree, and BFS spanning trees rooted at a chosen vertex (the routing
backbone construction of Section 2.1).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

__all__ = ["Graph", "build_communication_graph"]


class Graph:
    """Undirected graph with optional edge weights."""

    def __init__(self) -> None:
        self._adj: Dict[Hashable, Dict[Hashable, float]] = {}

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    def add_vertex(self, v: Hashable) -> None:
        """Insert an isolated vertex (no-op if present)."""
        self._adj.setdefault(v, {})

    def add_edge(self, u: Hashable, v: Hashable, weight: float = 1.0) -> None:
        """Insert (or re-weight) an undirected edge, creating endpoints."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if weight < 0.0:
            raise ValueError("edge weights must be non-negative")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    def remove_vertex(self, v: Hashable) -> None:
        """Delete a vertex and every incident edge."""
        if v not in self._adj:
            raise KeyError(v)
        for u in list(self._adj[v]):
            del self._adj[u][v]
        del self._adj[v]

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    @property
    def vertices(self) -> List[Hashable]:
        return list(self._adj)

    @property
    def n_vertices(self) -> int:
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> List[Tuple[Hashable, Hashable, float]]:
        """All edges as ``(u, v, weight)`` triples, each reported once."""
        seen = set()
        out = []
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    out.append((u, v, w))
        return out

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """True iff the undirected edge exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Hashable) -> List[Hashable]:
        """Vertices adjacent to ``v``."""
        return list(self._adj[v])

    def degree(self, v: Hashable) -> int:
        """Number of edges incident to ``v``."""
        return len(self._adj[v])

    def weight(self, u: Hashable, v: Hashable) -> float:
        """Weight of an existing edge (KeyError otherwise)."""
        return self._adj[u][v]

    # ------------------------------------------------------------------ #
    # Algorithms                                                         #
    # ------------------------------------------------------------------ #

    def connected_components(self) -> List[Set[Hashable]]:
        """Connected components via iterative DFS."""
        seen: Set[Hashable] = set()
        components = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            comp: Set[Hashable] = set()
            while stack:
                v = stack.pop()
                if v in comp:
                    continue
                comp.add(v)
                stack.extend(u for u in self._adj[v] if u not in comp)
            seen |= comp
            components.append(comp)
        return components

    def is_connected(self) -> bool:
        """True for the empty graph and any single-component graph."""
        if not self._adj:
            return True
        return len(self.connected_components()) == 1

    def bfs_shortest_path(
        self, source: Hashable, target: Hashable
    ) -> Optional[List[Hashable]]:
        """Fewest-hops path, or None if disconnected."""
        if source not in self._adj or target not in self._adj:
            raise KeyError("source or target not in graph")
        if source == target:
            return [source]
        parent: Dict[Hashable, Hashable] = {source: source}
        frontier = [source]
        while frontier:
            nxt = []
            for v in frontier:
                for u in self._adj[v]:
                    if u not in parent:
                        parent[u] = v
                        if u == target:
                            path = [u]
                            while path[-1] != source:
                                path.append(parent[path[-1]])
                            return path[::-1]
                        nxt.append(u)
            frontier = nxt
        return None

    def dijkstra(
        self, source: Hashable
    ) -> Tuple[Dict[Hashable, float], Dict[Hashable, Hashable]]:
        """Weighted shortest-path distances and parent pointers from source."""
        if source not in self._adj:
            raise KeyError("source not in graph")
        dist: Dict[Hashable, float] = {source: 0.0}
        parent: Dict[Hashable, Hashable] = {source: source}
        done: Set[Hashable] = set()
        counter = 0  # tie-breaker so heterogeneous vertices never compare
        heap: List[Tuple[float, int, Hashable]] = [(0.0, counter, source)]
        while heap:
            d, _, v = heapq.heappop(heap)
            if v in done:
                continue
            done.add(v)
            for u, w in self._adj[v].items():
                nd = d + w
                if u not in dist or nd < dist[u]:
                    dist[u] = nd
                    parent[u] = v
                    counter += 1
                    heapq.heappush(heap, (nd, counter, u))
        return dist, parent

    def shortest_weighted_path(
        self, source: Hashable, target: Hashable
    ) -> Optional[List[Hashable]]:
        """Minimum-weight path via Dijkstra, or None if disconnected."""
        dist, parent = self.dijkstra(source)
        if target not in dist:
            return None
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        return path[::-1]

    def minimum_spanning_tree(self) -> "Graph":
        """Prim's MST (of the whole graph; raises if disconnected)."""
        if not self.is_connected():
            raise ValueError("minimum spanning tree requires a connected graph")
        tree = Graph()
        if not self._adj:
            return tree
        start = next(iter(self._adj))
        tree.add_vertex(start)
        visited = {start}
        counter = 0
        heap: List[Tuple[float, int, Hashable, Hashable]] = []
        for u, w in self._adj[start].items():
            counter += 1
            heapq.heappush(heap, (w, counter, start, u))
        while heap and len(visited) < len(self._adj):
            w, _, u, v = heapq.heappop(heap)
            if v in visited:
                continue
            visited.add(v)
            tree.add_edge(u, v, w)
            for x, wx in self._adj[v].items():
                if x not in visited:
                    counter += 1
                    heapq.heappush(heap, (wx, counter, v, x))
        return tree

    def bfs_tree(self, root: Hashable) -> "Graph":
        """BFS spanning tree of root's component (hop-count backbone)."""
        if root not in self._adj:
            raise KeyError("root not in graph")
        tree = Graph()
        tree.add_vertex(root)
        seen = {root}
        frontier = [root]
        while frontier:
            nxt = []
            for v in frontier:
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        tree.add_edge(v, u, self._adj[v][u])
                        nxt.append(u)
            frontier = nxt
        return tree


def build_communication_graph(positions: np.ndarray, radio_range: float) -> Graph:
    """The SU graph ``G = (V, E)``: edge iff nodes are within ``radio_range``.

    Vertices are integer indices into ``positions``.  Isolated nodes are
    kept as vertices with no edges.
    """
    pts = np.atleast_2d(np.asarray(positions, dtype=float))
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("positions must have shape (n, 2)")
    if radio_range <= 0.0:
        raise ValueError("radio_range must be positive")
    graph = Graph()
    n = pts.shape[0]
    for i in range(n):
        graph.add_vertex(i)
    diff = pts[:, None, :] - pts[None, :, :]
    dist = np.linalg.norm(diff, axis=-1)
    ii, jj = np.where(np.triu(dist <= radio_range, k=1))
    for i, j in zip(ii.tolist(), jj.tolist()):
        graph.add_edge(i, j, float(dist[i, j]))
    return graph
