"""d-clustering of SU nodes (Section 2.1).

    "A d-clustering of V is a node disjoint division of V, where the
    distance between two SU nodes in a cluster is up to d (d <= r)."

The constraint is a *diameter* bound: every pair inside a cluster must be
within ``d``.  Finding a minimum-cardinality diameter-bounded partition is
NP-hard (it generalizes clique cover), so we use the standard greedy
quality-guaranteed heuristic: scan nodes (nearest-first from a seed) and
place each node into the first existing cluster all of whose members are
within ``d``; open a new cluster otherwise.  An optional ``max_size`` caps
cluster cardinality (the paper sweeps cooperative group sizes 1..4).

:func:`validate_clustering` checks the partition and diameter invariants
and is used both defensively and by the property-based tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.points import as_points, pairwise_distances

__all__ = ["d_cluster", "validate_clustering", "cluster_diameter"]


def d_cluster(
    positions: np.ndarray,
    d: float,
    max_size: Optional[int] = None,
) -> List[List[int]]:
    """Partition nodes into clusters of diameter at most ``d``.

    Parameters
    ----------
    positions:
        ``(n, 2)`` node coordinates.
    d:
        Maximum intra-cluster pairwise distance.
    max_size:
        Optional cap on nodes per cluster.

    Returns
    -------
    List of clusters, each a list of node indices; clusters are ordered by
    creation and indices within a cluster are ascending.  The result is a
    partition of ``range(n)``.
    """
    pts = as_points(positions)
    if d <= 0.0:
        raise ValueError("d must be positive")
    if max_size is not None and max_size < 1:
        raise ValueError("max_size must be >= 1 when given")
    n = pts.shape[0]
    if n == 0:
        return []

    dist = pairwise_distances(pts)

    # Deterministic scan order: start from the lexicographically smallest
    # point and repeatedly take the unvisited node closest to the previous
    # one.  Greedy locality makes the greedy assignment fill clusters
    # compactly instead of fragmenting them.
    order: List[int] = []
    start = int(np.lexsort((pts[:, 1], pts[:, 0]))[0])
    visited = np.zeros(n, dtype=bool)
    current = start
    for _ in range(n):
        order.append(current)
        visited[current] = True
        if len(order) == n:
            break
        remaining = np.where(~visited)[0]
        current = int(remaining[np.argmin(dist[current, remaining])])

    clusters: List[List[int]] = []
    for idx in order:
        placed = False
        for cluster in clusters:
            if max_size is not None and len(cluster) >= max_size:
                continue
            if all(dist[idx, member] <= d for member in cluster):
                cluster.append(idx)
                placed = True
                break
        if not placed:
            clusters.append([idx])
    for cluster in clusters:
        cluster.sort()
    return clusters


def cluster_diameter(positions: np.ndarray, members: Sequence[int]) -> float:
    """Largest pairwise distance among the given member indices (0 if < 2)."""
    if len(members) < 2:
        return 0.0
    pts = as_points(positions)[list(members)]
    return float(pairwise_distances(pts).max())


def validate_clustering(
    positions: np.ndarray,
    clusters: Sequence[Sequence[int]],
    d: float,
    max_size: Optional[int] = None,
) -> None:
    """Assert the d-clustering invariants; raises ``ValueError`` on violation.

    Checks: (1) the clusters partition ``range(n)`` exactly; (2) every
    cluster's diameter is at most ``d``; (3) the optional size cap holds.
    """
    pts = as_points(positions)
    n = pts.shape[0]
    flat = [idx for cluster in clusters for idx in cluster]
    if sorted(flat) != list(range(n)):
        raise ValueError("clusters do not form a partition of the node set")
    for cluster in clusters:
        if max_size is not None and len(cluster) > max_size:
            raise ValueError(f"cluster size {len(cluster)} exceeds cap {max_size}")
        diameter = cluster_diameter(pts, cluster)
        if diameter > d * (1.0 + 1e-12):
            raise ValueError(f"cluster diameter {diameter} exceeds d={d}")
