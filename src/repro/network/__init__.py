"""The CoMIMONet substrate (Section 2.1 of the paper, after ref [9]).

A cooperative MIMO network is built in layers:

1. :mod:`repro.network.node` — single-antenna SU nodes with positions and
   battery state;
2. :mod:`repro.network.graph` — the communication graph ``G = (V, E)``
   (edge iff two nodes are within radio range ``r``), plus the generic
   graph algorithms (BFS, Dijkstra, Prim MST, components) the higher
   layers need;
3. :mod:`repro.network.clustering` — *d-clustering*: node-disjoint groups
   of diameter at most ``d <= r``;
4. :mod:`repro.network.cluster` — clusters as virtual MIMO nodes with an
   elected head holding member state;
5. :mod:`repro.network.comimonet` — the cluster-level graph
   ``G_MIMO = (V_MIMO, E_MIMO)``, the spanning-tree routing backbone over
   head nodes, link classification (SISO/MISO/SIMO/MIMO) and
   reconfiguration.
"""

from repro.network.cluster import Cluster
from repro.network.clustering import d_cluster, validate_clustering
from repro.network.comimonet import CoMIMONet, CooperativeLink, LinkKind
from repro.network.graph import Graph, build_communication_graph
from repro.network.mobility import (
    RandomWaypointMobility,
    WaypointState,
    simulate_recluster_interval,
)
from repro.network.node import SUNode
from repro.network.protocol import SessionResult, SessionSimulator

__all__ = [
    "SUNode",
    "Graph",
    "build_communication_graph",
    "d_cluster",
    "validate_clustering",
    "Cluster",
    "CoMIMONet",
    "CooperativeLink",
    "LinkKind",
    "SessionSimulator",
    "SessionResult",
    "RandomWaypointMobility",
    "WaypointState",
    "simulate_recluster_interval",
]
