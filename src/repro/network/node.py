"""Secondary-user node model.

Each SU is a single-antenna radio with a position and a finite battery.
Head election (Section 2.1: "the head node retains information of other
elementary nodes such as ID and battery power level") uses the battery
level, so the node tracks cumulative energy consumption explicitly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["SUNode"]


class SUNode:
    """A single-antenna secondary-user node.

    Parameters
    ----------
    node_id:
        Unique integer identifier.
    position:
        Planar coordinates [m].
    battery_j:
        Initial battery energy [J].  ``float('inf')`` models a mains-powered
        node (the default keeps energy accounting optional).
    """

    __slots__ = ("node_id", "_position", "battery_j", "_consumed_j")

    def __init__(
        self,
        node_id: int,
        position: Tuple[float, float],
        battery_j: float = float("inf"),
    ) -> None:
        if node_id < 0:
            raise ValueError("node_id must be non-negative")
        if battery_j <= 0.0:
            raise ValueError("battery_j must be positive")
        self.node_id = int(node_id)
        self._position = np.asarray(position, dtype=float)
        if self._position.shape != (2,):
            raise ValueError(f"position must be a 2-vector, got {self._position.shape}")
        self.battery_j = float(battery_j)
        self._consumed_j = 0.0

    # ------------------------------------------------------------------ #

    @property
    def position(self) -> np.ndarray:
        """Node coordinates (read-only view)."""
        view = self._position.view()
        view.flags.writeable = False
        return view

    @property
    def consumed_j(self) -> float:
        """Total energy drawn from the battery so far [J]."""
        return self._consumed_j

    @property
    def remaining_j(self) -> float:
        """Battery energy remaining [J] (never negative)."""
        return max(self.battery_j - self._consumed_j, 0.0)

    @property
    def alive(self) -> bool:
        """True while the battery has energy left."""
        return self.remaining_j > 0.0

    def consume(self, energy_j: float) -> None:
        """Draw ``energy_j`` joules from the battery.

        Raises
        ------
        ValueError
            On negative draws.
        RuntimeError
            If the node is already exhausted (callers should check
            :attr:`alive` and reconfigure the network instead).
        """
        if energy_j < 0.0:
            raise ValueError("energy_j must be non-negative")
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} battery exhausted")
        self._consumed_j += energy_j

    def move_to(self, position: Tuple[float, float]) -> None:
        """Update the node's coordinates [m] (a mobility tick).

        Battery state is untouched; previously returned position views
        keep the old coordinates.
        """
        pos = np.asarray(position, dtype=float)
        if pos.shape != (2,):
            raise ValueError(f"position must be a 2-vector, got {pos.shape}")
        self._position = pos

    def distance_to(self, other: "SUNode") -> float:
        """Euclidean distance to another node [m]."""
        return float(np.linalg.norm(self._position - other._position))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        x, y = self._position
        return f"SUNode(id={self.node_id}, pos=({x:.1f}, {y:.1f}), remaining={self.remaining_j:.3g} J)"
