"""Node mobility and cluster-maintenance dynamics.

Section 2.1's clusters and backbone are "reconfigurable" because SU nodes
move.  :class:`RandomWaypointMobility` implements the standard random
waypoint model (pick a destination uniformly in the arena, travel at a
uniform-random speed, pause, repeat), and
:func:`simulate_recluster_interval` measures how long a d-clustering stays
valid under motion — the maintenance-rate input a deployment needs when
choosing ``d`` (tighter clusters break sooner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.network.clustering import d_cluster, validate_clustering
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["RandomWaypointMobility", "WaypointState", "simulate_recluster_interval"]


@dataclass
class WaypointState:
    """Mutable per-node walk state for incremental random-waypoint motion.

    Produced by :meth:`RandomWaypointMobility.start` and advanced one
    tick at a time by :meth:`RandomWaypointMobility.step` — the
    streaming counterpart of :meth:`RandomWaypointMobility.walk` for
    callers (the `repro.scenario` runtime) that interleave mobility with
    other events instead of materialising whole trajectories.  Given the
    same RNG stream, ``start`` + repeated ``step`` reproduce ``walk``
    bit-identically.
    """

    positions: np.ndarray
    waypoints: np.ndarray
    speeds: np.ndarray
    pause_left: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes in the walk."""
        return int(self.positions.shape[0])


@dataclass
class RandomWaypointMobility:
    """Random waypoint motion for ``n`` nodes in a rectangular arena.

    Parameters
    ----------
    arena:
        ``(width, height)`` of the arena [m]; positions stay inside.
    speed_range:
        ``(v_min, v_max)`` [m/s], drawn per leg.
    pause_s:
        Dwell time at each waypoint.
    """

    arena: Tuple[float, float] = (200.0, 200.0)
    speed_range: Tuple[float, float] = (0.5, 2.0)
    pause_s: float = 0.0

    def __post_init__(self) -> None:
        if min(self.arena) <= 0.0:
            raise ValueError("arena dimensions must be positive")
        v_min, v_max = self.speed_range
        if not (0.0 < v_min <= v_max):
            raise ValueError("need 0 < v_min <= v_max")
        if self.pause_s < 0.0:
            raise ValueError("pause_s must be non-negative")

    def initial_positions(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Uniform starting positions."""
        check_positive_int(n, "n")
        gen = as_rng(rng)
        return gen.uniform((0.0, 0.0), self.arena, size=(n, 2))

    def start(self, positions: np.ndarray, rng: RngLike = None) -> WaypointState:
        """Begin an incremental walk from ``positions``.

        Draws the first waypoint and speed for every node (the same
        draws, in the same order, as the head of :meth:`walk`).
        """
        gen = as_rng(rng)
        pos = np.array(positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError("positions must have shape (n, 2)")
        n = pos.shape[0]
        return WaypointState(
            positions=pos,
            waypoints=gen.uniform((0.0, 0.0), self.arena, size=(n, 2)),
            speeds=gen.uniform(*self.speed_range, size=n),
            pause_left=np.zeros(n),
        )

    def step(self, state: WaypointState, step_s: float, rng: RngLike = None) -> np.ndarray:
        """Advance an incremental walk by one tick of ``step_s`` seconds.

        Mutates ``state`` in place and returns ``state.positions``.
        Waypoint arrivals re-draw a destination and speed from ``rng`` in
        node order, exactly as :meth:`walk` does within a step.
        """
        check_positive(step_s, "step_s")
        gen = as_rng(rng)
        pos = state.positions
        waypoints = state.waypoints
        speeds = state.speeds
        moving = state.pause_left < step_s
        state.pause_left = np.maximum(state.pause_left - step_s, 0.0)
        pause_left = state.pause_left
        for i in np.where(moving)[0]:
            budget = step_s
            while budget > 1e-12:
                to_target = waypoints[i] - pos[i]
                dist = float(np.linalg.norm(to_target))
                travel = speeds[i] * budget
                if travel < dist:
                    pos[i] += to_target * (travel / dist)
                    break
                # arrive, pause, re-draw
                pos[i] = waypoints[i]
                budget -= dist / speeds[i] if speeds[i] > 0 else budget
                waypoints[i] = gen.uniform((0.0, 0.0), self.arena)
                speeds[i] = gen.uniform(*self.speed_range)
                if self.pause_s > 0.0:
                    pause_left[i] = self.pause_s
                    break
        return pos

    def admit(self, state: WaypointState, rng: RngLike = None) -> int:
        """Add a newly joined node to an incremental walk.

        Draws its starting position, first waypoint and speed; returns
        the new node's row index in ``state.positions``.
        """
        gen = as_rng(rng)
        position = gen.uniform((0.0, 0.0), self.arena)
        waypoint = gen.uniform((0.0, 0.0), self.arena)
        speed = gen.uniform(*self.speed_range)
        state.positions = np.vstack([state.positions, position[None, :]])
        state.waypoints = np.vstack([state.waypoints, waypoint[None, :]])
        state.speeds = np.append(state.speeds, speed)
        state.pause_left = np.append(state.pause_left, 0.0)
        return state.n - 1

    def walk(
        self,
        positions: np.ndarray,
        duration_s: float,
        step_s: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Trajectories sampled every ``step_s`` for ``duration_s``.

        Returns an array of shape ``(n_steps + 1, n, 2)`` including the
        initial positions.  Implemented as :meth:`start` + ``n_steps``
        :meth:`step` calls, so batch and incremental walks share one
        RNG draw order.
        """
        check_positive(duration_s, "duration_s")
        check_positive(step_s, "step_s")
        gen = as_rng(rng)
        state = self.start(positions, gen)
        n_steps = int(np.ceil(duration_s / step_s))
        out = np.empty((n_steps + 1, state.n, 2))
        out[0] = state.positions
        for step in range(1, n_steps + 1):
            out[step] = self.step(state, step_s, gen)
        return out


def simulate_recluster_interval(
    n_nodes: int,
    cluster_diameter: float,
    mobility: RandomWaypointMobility = RandomWaypointMobility(),
    step_s: float = 1.0,
    max_duration_s: float = 600.0,
    n_trials: int = 20,
    rng: RngLike = None,
) -> List[float]:
    """Time until a fresh d-clustering first violates its diameter bound.

    For each trial: place nodes, cluster them, then walk until some cluster's
    diameter exceeds ``cluster_diameter`` — the moment CoMIMONet must
    re-cluster.  Returns the per-trial intervals (``max_duration_s`` when a
    clustering survived the whole window).
    """
    check_positive_int(n_nodes, "n_nodes")
    check_positive(cluster_diameter, "cluster_diameter")
    check_positive_int(n_trials, "n_trials")
    gen = as_rng(rng)
    intervals = []
    for _ in range(n_trials):
        start = mobility.initial_positions(n_nodes, gen)
        clusters = d_cluster(start, cluster_diameter)
        trajectory = mobility.walk(start, max_duration_s, step_s, gen)
        broke_at = max_duration_s
        for step in range(1, trajectory.shape[0]):
            try:
                validate_clustering(trajectory[step], clusters, cluster_diameter)
            except ValueError:
                broke_at = step * step_s
                break
        intervals.append(float(broke_at))
    return intervals
