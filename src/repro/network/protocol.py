"""Protocol-level simulation of data sessions over a CoMIMONet.

Section 2.1 sketches the runtime system around the cooperative schemes:
head nodes coordinate hops, CSMA/CA arbitrates the channel, data relays
along the spanning-tree backbone, and "the clusters and the routing
backbone are reconfigurable".  :class:`SessionSimulator` executes that
loop on the discrete-event kernel:

* a session's payload is split into chunks;
* each chunk traverses the backbone route hop by hop — every hop pays a
  CSMA/CA channel-access delay (sampled from a calibrated MAC model) plus
  the scheme's airtime (:func:`repro.core.schemes.hop_timing`), and drains
  the participants' batteries with the scheme's energy
  (:func:`repro.core.schemes.hop_energy`);
* when a node dies the network reconfigures (head re-election, dead
  clusters dropped, backbone rebuilt) and the session re-routes; if no
  route survives, the session ends early.

The output separates delivered payload, wall-clock latency, MAC overhead
and per-cluster energy — the cross-layer accounting of ref [9].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.energy.model import EnergyModel
from repro.energy.optimize import DEFAULT_B_RANGE, minimize_over_b
from repro.mac.csma import CsmaCaSimulator, CsmaConfig
from repro.network.comimonet import CoMIMONet, CooperativeLink
from repro.simulation.events import EventScheduler
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import (
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = ["SessionResult", "SessionSimulator"]


@dataclass
class SessionResult:
    """Outcome of one simulated data session."""

    requested_bits: float
    delivered_bits: float = 0.0
    elapsed_s: float = 0.0
    airtime_s: float = 0.0
    mac_delay_s: float = 0.0
    hops_completed: int = 0
    reconfigurations: int = 0
    energy_by_cluster_j: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_non_negative(self.requested_bits, "requested_bits")
        check_non_negative(self.delivered_bits, "delivered_bits")
        check_non_negative(self.elapsed_s, "elapsed_s")
        check_non_negative(self.airtime_s, "airtime_s")
        check_non_negative(self.mac_delay_s, "mac_delay_s")
        check_non_negative_int(self.hops_completed, "hops_completed")
        check_non_negative_int(self.reconfigurations, "reconfigurations")

    @property
    def completed(self) -> bool:
        return self.delivered_bits >= self.requested_bits

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_by_cluster_j.values())

    @property
    def goodput_bps(self) -> float:
        return self.delivered_bits / self.elapsed_s if self.elapsed_s > 0 else 0.0


class SessionSimulator:
    """Run end-to-end sessions over a CoMIMONet with energy + MAC costs.

    Parameters
    ----------
    network:
        The cluster network (mutated: batteries drain, reconfigurations
        happen).
    model:
        Energy model pricing every hop.
    bandwidth:
        System bandwidth ``B`` [Hz].
    target_ber:
        Per-hop BER target ``p``.
    mac_config:
        CSMA/CA parameters; per-hop access delays are drawn from an
        empirical delay distribution simulated once at construction (with
        ``mac_contenders`` saturated stations — neighbouring heads).
    cooperative:
        True = hops use all alive members (Algorithm 2); False = SISO
        head-to-head hops (the baseline).
    """

    def __init__(
        self,
        network: CoMIMONet,
        model: EnergyModel,
        bandwidth: float = 10e3,
        target_ber: float = 0.001,
        mac_config: CsmaConfig = CsmaConfig(),
        mac_contenders: int = 3,
        cooperative: bool = True,
        rng: RngLike = None,
    ) -> None:
        self.network = network
        self.model = model
        self.bandwidth = check_positive(bandwidth, "bandwidth")
        self.target_ber = check_probability(target_ber, "target_ber")
        self.cooperative = bool(cooperative)
        self.rng = as_rng(rng)
        check_positive_int(mac_contenders, "mac_contenders")

        mac = CsmaCaSimulator(
            n_stations=mac_contenders, config=mac_config, saturated=True, rng=self.rng
        )
        stats = mac.run(2_000_000)
        delays = np.asarray(stats.access_delays_us, dtype=float)
        self._mac_delays_s = (
            delays * 1e-6 if delays.size else np.array([mac_config.difs_us * 1e-6])
        )

    # ------------------------------------------------------------------ #

    def _draw_mac_delay(self) -> float:
        return float(self.rng.choice(self._mac_delays_s))

    def _hop_parameters(self, link: CooperativeLink) -> Tuple[int, int, int]:
        """(mt, mr, best_b) for one hop under the current policy."""
        # Imported here: repro.core.schemes itself imports repro.network
        # modules, so a module-level import would be circular.
        from repro.core.schemes import hop_energy

        if self.cooperative:
            mt, mr = link.mt, link.mr
        else:
            mt = mr = 1
        best = minimize_over_b(
            lambda b: hop_energy(
                self.model,
                self.target_ber,
                b,
                mt,
                mr,
                max(self.network.cluster_diameter, 1e-6),
                link.length_m,
                self.bandwidth,
            ).total,
            DEFAULT_B_RANGE,
        )
        return mt, mr, best.b

    def _charge_hop(
        self,
        link: CooperativeLink,
        mt: int,
        mr: int,
        b: int,
        chunk_bits: float,
        result: SessionResult,
    ) -> None:
        """Drain batteries for one chunk over one hop."""
        from repro.core.schemes import hop_energy

        hop = hop_energy(
            self.model,
            self.target_ber,
            b,
            mt,
            mr,
            max(self.network.cluster_diameter, 1e-6),
            link.length_m,
            self.bandwidth,
        )
        tx = self.network.cluster(link.tx_cluster_id)
        rx = self.network.cluster(link.rx_cluster_id)
        energy = hop.total * chunk_bits
        if self.cooperative:
            participants = tx.alive_nodes + rx.alive_nodes
        else:
            participants = [tx.head, rx.head]
        share = energy / len(participants)
        for node in participants:
            node.consume(min(share, node.remaining_j))
        for cid in (link.tx_cluster_id, link.rx_cluster_id):
            result.energy_by_cluster_j[cid] = (
                result.energy_by_cluster_j.get(cid, 0.0) + energy / 2.0
            )

    def run_session(
        self,
        source_cluster_id: int,
        dest_cluster_id: int,
        n_bits: float,
        chunk_bits: float = 100_000.0,
        max_reconfigurations: int = 50,
    ) -> SessionResult:
        """Deliver ``n_bits`` from source to destination cluster.

        Returns a :class:`SessionResult`; ``completed`` is False when the
        network partitioned or ran out of energy first.
        """
        from repro.core.schemes import hop_timing

        check_positive(n_bits, "n_bits")
        check_positive(chunk_bits, "chunk_bits")
        scheduler = EventScheduler()
        result = SessionResult(requested_bits=n_bits)

        remaining = n_bits
        while remaining > 0:
            try:
                route = self.network.route(source_cluster_id, dest_cluster_id)
            except (ValueError, KeyError):
                break  # partitioned
            if not route and source_cluster_id != dest_cluster_id:
                break
            chunk = min(chunk_bits, remaining)
            try:
                for link in route:
                    mt, mr, b = self._hop_parameters(link)
                    mac_delay = self._draw_mac_delay()
                    timing = hop_timing(chunk, b, mt, mr, self.bandwidth)
                    scheduler.schedule(mac_delay + timing.total_s, lambda: None)
                    scheduler.run()
                    result.mac_delay_s += mac_delay
                    result.airtime_s += timing.total_s
                    self._charge_hop(link, mt, mr, b, chunk, result)
                    result.hops_completed += 1
            except (RuntimeError, ValueError):
                # a battery died mid-hop: reconfigure and retry the chunk
                if result.reconfigurations >= max_reconfigurations:
                    break
                self.network.reconfigure()
                result.reconfigurations += 1
                if not any(
                    c.cluster_id == source_cluster_id for c in self.network.clusters
                ) or not any(
                    c.cluster_id == dest_cluster_id for c in self.network.clusters
                ):
                    break
                continue
            remaining -= chunk
            result.delivered_bits += chunk
            # periodic maintenance: rotate heads as batteries drain
            if any(not c.is_alive for c in self.network.clusters):
                self.network.reconfigure()
                result.reconfigurations += 1
        result.elapsed_s = scheduler.now
        return result
