"""Random and deterministic node placements.

These generators cover the layouts used in Section 6:

* ``random_in_disk`` — the 20 candidate primary receivers of Table 1
  ("randomly located in a circle centered at St1 with a diameter 300 m").
* ``place_on_segment`` — the relays "uniformly put in the corridor" of the
  Table 3 experiment.
* ``place_on_arc`` — the receiver walked along a semicircle in 20-degree
  steps for Figure 8.
* ``random_in_rectangle`` / ``random_in_annulus`` — general CoMIMONet
  deployments for the network examples.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, as_rng

__all__ = [
    "random_in_disk",
    "random_in_annulus",
    "random_in_rectangle",
    "place_on_segment",
    "place_on_arc",
]


def random_in_disk(
    n: int,
    center: np.ndarray = (0.0, 0.0),
    radius: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """``n`` points uniform over a disk (area-uniform, not radius-uniform)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    gen = as_rng(rng)
    r = radius * np.sqrt(gen.random(n))
    theta = gen.uniform(0.0, 2.0 * np.pi, n)
    pts = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=-1)
    return pts + np.asarray(center, dtype=float)


def random_in_annulus(
    n: int,
    center: np.ndarray = (0.0, 0.0),
    inner_radius: float = 0.5,
    outer_radius: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """``n`` points uniform over an annulus (keeps nodes off a protected zone)."""
    if not (0.0 <= inner_radius < outer_radius):
        raise ValueError("need 0 <= inner_radius < outer_radius")
    gen = as_rng(rng)
    u = gen.random(n)
    r = np.sqrt(inner_radius**2 + u * (outer_radius**2 - inner_radius**2))
    theta = gen.uniform(0.0, 2.0 * np.pi, n)
    pts = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=-1)
    return pts + np.asarray(center, dtype=float)


def random_in_rectangle(
    n: int,
    low: np.ndarray = (0.0, 0.0),
    high: np.ndarray = (1.0, 1.0),
    rng: RngLike = None,
) -> np.ndarray:
    """``n`` points uniform over an axis-aligned rectangle ``[low, high]``."""
    low = np.asarray(low, dtype=float)
    high = np.asarray(high, dtype=float)
    if np.any(high <= low):
        raise ValueError("each coordinate of high must exceed low")
    gen = as_rng(rng)
    return gen.uniform(low, high, size=(n, 2))


def place_on_segment(a: np.ndarray, b: np.ndarray, n: int, endpoint_margin: float = 0.0) -> np.ndarray:
    """``n`` points evenly spaced along the open segment from ``a`` to ``b``.

    ``endpoint_margin`` (in 0..0.5) shrinks the usable span symmetrically, so
    relays are not placed on top of the transmitter/receiver.  For ``n`` points
    the interior fractions are ``(i+1)/(n+1)`` rescaled into the margin span —
    e.g. a single relay lands at the midpoint, matching the paper's
    "relay located in the middle" single-relay baseline.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not (0.0 <= endpoint_margin < 0.5):
        raise ValueError("endpoint_margin must lie in [0, 0.5)")
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    fractions = (np.arange(1, n + 1)) / (n + 1)
    fractions = endpoint_margin + fractions * (1.0 - 2.0 * endpoint_margin)
    return a[None, :] + fractions[:, None] * (b - a)[None, :]


def place_on_arc(
    center: np.ndarray,
    radius: float,
    start_deg: float,
    stop_deg: float,
    step_deg: float,
) -> np.ndarray:
    """Points on a circular arc at ``step_deg`` increments, endpoints included.

    Mirrors the Figure 8 measurement: "the receiver is moved between 0 degree
    and 180 degree with 20 degree increment" on a semicircle.
    """
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    if step_deg <= 0.0:
        raise ValueError("step_deg must be positive")
    angles = np.arange(start_deg, stop_deg + 0.5 * step_deg, step_deg)
    rad = np.deg2rad(angles)
    pts = np.stack([radius * np.cos(rad), radius * np.sin(rad)], axis=-1)
    return pts + np.asarray(center, dtype=float)
