"""Vectorized planar point operations.

Points are plain NumPy arrays of shape ``(2,)`` (a single point) or
``(n, 2)`` (a batch).  Keeping them as raw arrays rather than a Point class
lets every downstream computation (distance matrices, array factors,
clustering) stay fully vectorized, per the HPC guides.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "distance",
    "distance_matrix",
    "pairwise_distances",
    "midpoint",
    "angle_of",
    "angle_at",
    "unit_vector",
    "rotate",
]


def as_points(points: np.ndarray) -> np.ndarray:
    """Coerce input to a float array of shape ``(n, 2)``.

    A single ``(2,)`` point becomes ``(1, 2)``.
    """
    arr = np.atleast_2d(np.asarray(points, dtype=float))
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {arr.shape}")
    return arr


def distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance between points; broadcasts over leading axes."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.linalg.norm(a - b, axis=-1)


def distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs distances between two point sets.

    Parameters
    ----------
    a, b:
        Arrays of shape ``(m, 2)`` and ``(n, 2)``.

    Returns
    -------
    ndarray of shape ``(m, n)`` with ``out[i, j] = |a_i - b_j|``.
    """
    a = as_points(a)
    b = as_points(b)
    diff = a[:, None, :] - b[None, :, :]
    return np.linalg.norm(diff, axis=-1)


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Symmetric ``(n, n)`` distance matrix of one point set."""
    pts = as_points(points)
    return distance_matrix(pts, pts)


def midpoint(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Midpoint of the segment ``ab``; broadcasts element-wise."""
    return (np.asarray(a, dtype=float) + np.asarray(b, dtype=float)) / 2.0


def angle_of(vec: np.ndarray) -> np.ndarray:
    """Polar angle of a vector (or batch of vectors) in radians, in (-pi, pi]."""
    v = np.asarray(vec, dtype=float)
    return np.arctan2(v[..., 1], v[..., 0])


def angle_at(vertex: np.ndarray, p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Interior angle ``∠ p-vertex-q`` in radians, in ``[0, pi]``.

    This is the geometry used for ``alpha = ∠ Pr-St1-St2`` in Algorithm 3:
    the angle at the delayed transmitter between the direction to the primary
    receiver and the direction to its pair partner.
    """
    vertex = np.asarray(vertex, dtype=float)
    u = np.asarray(p, dtype=float) - vertex
    v = np.asarray(q, dtype=float) - vertex
    nu = np.linalg.norm(u, axis=-1)
    nv = np.linalg.norm(v, axis=-1)
    if np.any(nu == 0.0) or np.any(nv == 0.0):
        raise ValueError("angle_at is undefined when a point coincides with the vertex")
    cos = np.sum(u * v, axis=-1) / (nu * nv)
    return np.arccos(np.clip(cos, -1.0, 1.0))


def unit_vector(angle_rad: np.ndarray) -> np.ndarray:
    """Unit vector(s) at the given polar angle(s); output shape ``(..., 2)``."""
    a = np.asarray(angle_rad, dtype=float)
    return np.stack([np.cos(a), np.sin(a)], axis=-1)


def rotate(points: np.ndarray, angle_rad: float, origin: np.ndarray = (0.0, 0.0)) -> np.ndarray:
    """Rotate point(s) about ``origin`` by ``angle_rad`` (counter-clockwise)."""
    pts = np.asarray(points, dtype=float)
    origin = np.asarray(origin, dtype=float)
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    rot = np.array([[c, -s], [s, c]])
    return (pts - origin) @ rot.T + origin
