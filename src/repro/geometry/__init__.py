"""Planar geometry for node layouts, beamforming angles and cluster shapes.

The paper's scenarios are all two-dimensional: primary/secondary users on a
plane, clusters of diameter ``d``, long-haul links of length ``D``, and the
interweave geometry of Figure 5 (angles ``alpha`` and ``beta`` between the
transmit pair, the primary receiver and the secondary receiver).
"""

from repro.geometry.placement import (
    place_on_arc,
    place_on_segment,
    random_in_annulus,
    random_in_disk,
    random_in_rectangle,
)
from repro.geometry.points import (
    angle_at,
    angle_of,
    distance,
    distance_matrix,
    midpoint,
    pairwise_distances,
    rotate,
    unit_vector,
)

__all__ = [
    "distance",
    "distance_matrix",
    "pairwise_distances",
    "midpoint",
    "angle_of",
    "angle_at",
    "unit_vector",
    "rotate",
    "random_in_disk",
    "random_in_annulus",
    "random_in_rectangle",
    "place_on_segment",
    "place_on_arc",
]
